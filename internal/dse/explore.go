package dse

import (
	"context"
	"fmt"
	"iter"
	"runtime"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/units"
)

// Explorer is the design-space exploration engine: it fans the
// (UAV × compute × algorithm × sensor) cross product out across the
// package's work-stealing scheduler and streams the surviving
// candidates in the canonical serial order, so parallel output is
// element-for-element identical to Workers=1 output even when the
// space is skewed and cells rebalance between workers mid-flight.
type Explorer struct {
	Catalog     *catalog.Catalog
	Space       Space
	Constraints Constraints
	// Workers bounds the pool: 0 picks GOMAXPROCS, 1 runs serially
	// inline (no goroutines).
	Workers int
	// ChunkSize is the scheduler's claim grain — the number of
	// candidates a worker takes from its deque at once; 0 picks a size
	// that rebalances skewed cells without measurable claim overhead.
	ChunkSize int
	// Cache memoizes analyses across explorations (e.g. a server
	// re-exploring after a constraint tweak). Nil selects the
	// process-wide core.SharedCache; core.CacheOff() disables
	// memoization entirely (e.g. a benchmark isolating the engine).
	Cache *core.Cache
	// Objective optionally scores each surviving candidate with a
	// mission-level evaluator (see NewObjective and docs/OBJECTIVES.md):
	// the plan composes it after the partial combine and the constraint
	// check, fills Candidate.Metrics with its columns, and memoizes
	// (analysis, metrics) together under a (Config, objective, seed)
	// cache key. Nil explores the plain F-1 analysis only.
	Objective Evaluator
}

// cache resolves the effective analysis cache.
func (e Explorer) cache() *core.Cache {
	if e.Cache != nil {
		return e.Cache
	}
	return core.SharedCache()
}

// workers resolves the effective pool size.
func (e Explorer) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// grain resolves the scheduler's claim quantum for n candidates.
func (e Explorer) grain(n, workers int) int {
	if e.ChunkSize > 0 {
		return e.ChunkSize
	}
	return stealGrain(n, workers)
}

// plan is the pre-resolved, partially evaluated exploration: every
// catalog lookup is done once per axis value, and every part of the
// F-1 analysis that depends on only a subset of the axes is computed
// once per distinct subset value — one core.ModelPartial per distinct
// (airframe, payload, sensing range) triple, one core.Stage per
// distinct rate. Building candidate i is then index math, the
// allocation-free core.AnalyzeWithPartial combine and a constraint
// check: no catalog access, no acceleration-model evaluation, no
// knee/roof recomputation.
type plan struct {
	cons  Constraints
	cache *core.Cache
	// memoized is whether cache actually memoizes; when false the
	// candidates skip cache plumbing and combine partials directly.
	memoized bool
	// obj is the optional mission-level evaluator, with its registry
	// name, base Monte-Carlo seed (0 = deterministic) and column set
	// resolved once at plan time.
	obj     Evaluator
	objName string
	objSeed int64
	objCols []ObjectiveColumn
	uavs    []catalog.UAV
	// computes and computeMass are parallel: computeMass[i] is
	// computes[i].TotalMass under the catalog's heatsink model.
	computes    []catalog.Compute
	computeMass []units.Mass
	sensors     []sensorChoice
	// cells enumerates the buildable (UAV, compute, algorithm) triples
	// in canonical order; each crosses with every sensor choice.
	cells []cell
	// partials[(u·|computes|+c)·|sensors|+s] is the model partial for
	// the (UAV u, compute c, sensor s) payload triple. Distinct triples
	// that resolve to the same (payload, range) on one UAV share a
	// partial; the algorithm axis never touches the model, so every
	// algorithm of a cell reuses its partial outright.
	partials []*core.ModelPartial
	// sensorStages[u·|sensors|+s] is the sensor pipeline stage — per
	// (UAV, sensor) because the default sensor choice resolves per UAV.
	sensorStages []core.Stage
	// controlStages[u] is UAV u's flight-controller stage.
	controlStages []core.Stage
}

// sensorChoice is one value of the sensor axis: a named catalog sensor,
// or the UAV's default (the empty name).
type sensorChoice struct {
	name       string
	spec       catalog.Sensor
	useDefault bool
}

// cell is one buildable (UAV, compute, algorithm) triple with its
// measured compute stage and precomputed configuration name.
type cell struct {
	u, c int
	algo string
	// stage is the algorithm-on-compute pipeline stage; stage.Rate is
	// the perf-table throughput.
	stage core.Stage
	name  string
}

// total is the number of candidates the plan will visit.
func (p *plan) total() int { return len(p.cells) * len(p.sensors) }

// newPlan resolves the space against the catalog. Unknown UAVs,
// computes, sensors and algorithms are errors (as in the serial
// engine, which hit them on the first analysis); a registered
// algorithm without a performance-table row on a given compute is
// silently skipped — that combination is not a buildable system.
func newPlan(cat *catalog.Catalog, space Space, cons Constraints, cache *core.Cache, obj Evaluator) (*plan, error) {
	if len(space.UAVs) == 0 || len(space.Computes) == 0 || len(space.Algorithms) == 0 {
		return nil, fmt.Errorf("dse: space must name at least one UAV, compute and algorithm")
	}
	p := &plan{cons: cons, cache: cache}
	if obj != nil {
		p.obj = obj
		p.objName = obj.Name()
		p.objSeed = obj.Seed()
		p.objCols = obj.Columns()
	}
	p.uavs = make([]catalog.UAV, len(space.UAVs))
	for i, name := range space.UAVs {
		u, err := cat.UAV(name)
		if err != nil {
			return nil, fmt.Errorf("dse: resolving UAV %q: %w", name, err)
		}
		p.uavs[i] = u
	}
	p.computes = make([]catalog.Compute, len(space.Computes))
	p.computeMass = make([]units.Mass, len(space.Computes))
	for i, name := range space.Computes {
		c, err := cat.Compute(name)
		if err != nil {
			return nil, fmt.Errorf("dse: resolving compute %q: %w", name, err)
		}
		p.computes[i] = c
		p.computeMass[i] = c.TotalMass(cat.Heatsink)
	}
	sensorNames := space.Sensors
	if len(sensorNames) == 0 {
		sensorNames = []string{""}
	}
	p.sensors = make([]sensorChoice, len(sensorNames))
	for i, name := range sensorNames {
		if name == "" {
			p.sensors[i] = sensorChoice{useDefault: true}
			continue
		}
		s, err := cat.Sensor(name)
		if err != nil {
			return nil, fmt.Errorf("dse: resolving sensor %q: %w", name, err)
		}
		p.sensors[i] = sensorChoice{name: name, spec: s}
	}
	// Rate lookups once per (algorithm × compute) pair — not once per
	// candidate — with each measured rate's stage round trip done here.
	type algoStages struct {
		stages []core.Stage // parallel to p.computes; Rate < 0 = unmeasured
	}
	perAlgo := make([]algoStages, len(space.Algorithms))
	for ai, algo := range space.Algorithms {
		// Validation parity with the UAV/compute/sensor axes: an
		// algorithm the catalog has never heard of is a caller error,
		// surfaced at plan time — not a silently empty exploration. A
		// registered algorithm merely lacking perf rows on the requested
		// computes is different: those combinations are simply not
		// buildable and are skipped below.
		if _, err := cat.Algorithm(algo); err != nil {
			return nil, fmt.Errorf("dse: resolving algorithm %q: %w", algo, err)
		}
		stages := make([]core.Stage, len(space.Computes))
		for ci, comp := range space.Computes {
			r, err := cat.Perf(algo, comp)
			if err != nil {
				stages[ci] = core.Stage{Rate: -1}
				continue
			}
			stages[ci] = core.PrecomputeStage(r)
		}
		perAlgo[ai] = algoStages{stages: stages}
	}
	// Real catalogs are sparse (most algorithms are measured on few
	// platforms), so size the cell slice by the measured pairs, not the
	// full cross product.
	measured := 0
	for ai := range perAlgo {
		for ci := range perAlgo[ai].stages {
			if perAlgo[ai].stages[ci].Rate >= 0 {
				measured++
			}
		}
	}
	// Cell names render into one exact-size backing buffer and are
	// sliced back out, so the whole plan costs one name allocation
	// instead of one per cell. Each name is byte-identical to
	// catalog.Resolved.Name.
	p.cells = make([]cell, 0, len(space.UAVs)*measured)
	pairUsed := make([]bool, len(space.UAVs)*len(space.Computes))
	total := 0
	for ui := range space.UAVs {
		for ci := range space.Computes {
			for ai, algo := range space.Algorithms {
				st := perAlgo[ai].stages[ci]
				if st.Rate < 0 {
					continue // not a buildable combination
				}
				total += len(space.UAVs[ui]) + len(algo) + len(space.Computes[ci]) + 2*len(" + ")
				p.cells = append(p.cells, cell{u: ui, c: ci, algo: algo, stage: st})
				pairUsed[ui*len(space.Computes)+ci] = true
			}
		}
	}
	var names strings.Builder
	names.Grow(total) // best-effort sizing; offs below is authoritative
	offs := make([]int, len(p.cells)+1)
	for i := range p.cells {
		cl := &p.cells[i]
		names.WriteString(space.UAVs[cl.u])
		names.WriteString(" + ")
		names.WriteString(cl.algo)
		names.WriteString(" + ")
		names.WriteString(space.Computes[cl.c])
		offs[i+1] = names.Len()
	}
	all := names.String()
	for i := range p.cells {
		p.cells[i].name = all[offs[i]:offs[i+1]]
	}
	p.precompute(pairUsed)
	p.memoized = p.cache.Memoizes()
	return p, nil
}

// precompute builds the factored-evaluation tables: per-(UAV, sensor)
// sensor stages, per-UAV control stages, and one model partial per
// distinct (UAV, payload, sensing range) triple across the
// (UAV × compute × sensor) cross section — restricted to the
// (UAV, compute) pairs some cell actually uses, so a sparse perf table
// does not pay a_max lookups for unbuildable combinations. The
// algorithm axis is absent by construction — it only contributes the
// compute stage — so an algorithm-heavy space reuses each partial once
// per algorithm.
func (p *plan) precompute(pairUsed []bool) {
	nS := len(p.sensors)
	p.sensorStages = make([]core.Stage, len(p.uavs)*nS)
	p.controlStages = make([]core.Stage, len(p.uavs))
	p.partials = make([]*core.ModelPartial, len(p.uavs)*len(p.computes)*nS)
	type partialKey struct {
		u       int
		payload units.Mass
		rng     units.Length
	}
	dedup := make(map[partialKey]*core.ModelPartial, len(p.uavs)*len(p.computes))
	for ui := range p.uavs {
		uav := &p.uavs[ui]
		p.controlStages[ui] = core.PrecomputeStage(uav.ControlRate)
		for si := range p.sensors {
			sensor := p.sensors[si].spec
			if p.sensors[si].useDefault {
				sensor = uav.DefaultSensor
			}
			p.sensorStages[ui*nS+si] = core.PrecomputeStage(sensor.Rate)
			for ci := range p.computes {
				if !pairUsed[ui*len(p.computes)+ci] {
					continue // no buildable cell references this pair
				}
				// Assemble through catalog.Resolved so the payload
				// formula and field mapping live in exactly one place;
				// the rates are combine-time inputs and stay zero.
				r := catalog.Resolved{
					UAV:         *uav,
					Compute:     p.computes[ci],
					Sensor:      sensor,
					ComputeMass: p.computeMass[ci],
				}
				key := partialKey{u: ui, payload: r.Payload(), rng: sensor.Range}
				mp, ok := dedup[key]
				if !ok {
					pm := core.PrecomputeModel(r.ConfigNamed(""))
					mp = &pm
					dedup[key] = mp
				}
				p.partials[(ui*len(p.computes)+ci)*nS+si] = mp
			}
		}
	}
}

// candidateInto builds and analyzes candidate i in place — callers
// hand it the output slot so a ~half-kilobyte Candidate is written
// once, not copied through return values. ok is false when the
// constraints reject it (the slot's contents are then unspecified).
// arena, when non-nil, supplies the Ceilings backing for non-memoized
// candidates (one allocation per block instead of per candidate); the
// memoized path never uses it — a cached entry must own an exact-size
// slice, not pin a whole block. ctx governs only a memoized
// candidate's coalesced wait on another caller's in-flight analysis;
// the combine itself is pure arithmetic with no cancellation points.
//
//reprolint:hotpath
func (p *plan) candidateInto(ctx context.Context, i int, cand *Candidate, arena *[]core.Ceiling) (ok bool, err error) {
	nS := len(p.sensors)
	ci, si := i/nS, i%nS
	cl := &p.cells[ci]
	sc := &p.sensors[si]
	uav := &p.uavs[cl.u]
	comp := &p.computes[cl.c]
	mp := p.partials[(cl.u*len(p.computes)+cl.c)*nS+si]
	sensorStage := p.sensorStages[cl.u*nS+si]
	controlStage := p.controlStages[cl.u]
	if p.obj != nil {
		return p.candidateScoredInto(ctx, cl, sc, uav, comp, mp, sensorStage, controlStage, cand, arena)
	}
	// The caller's slot may have carried a scored candidate (the serial
	// paths reuse one); a plain exploration must not leak stale metrics.
	cand.Metrics = nil
	if p.memoized {
		// Probe before building the fill closure: the hit path — a
		// server re-exploring a popular space — allocates nothing.
		cfg := mp.Config(cl.name, sensorStage, cl.stage, controlStage)
		var hit bool
		cand.Analysis, hit = p.cache.Lookup(cfg)
		if !hit {
			// Clone the name before the entry can be inserted: cl.name is
			// a substring of the plan-wide name buffer, and a cached
			// Config holding it would pin that entire buffer in the
			// process-wide cache for as long as the entry lives. String
			// keys compare by content, so later Lookups with the
			// substring name still hit the clone-keyed entry.
			cfg.Name = strings.Clone(cl.name)
			name := cfg.Name
			//reprolint:allow hotpathalloc the fill closure is built only on the cache-miss path, which allocates anyway
			cand.Analysis, err = p.cache.AnalyzeContextFunc(ctx, cfg, func() (core.Analysis, error) {
				return core.AnalyzeWithPartial(mp, name, sensorStage, cl.stage, controlStage)
			})
		}
	} else {
		err = core.AnalyzeWithPartialInto(mp, cl.name, sensorStage, cl.stage, controlStage, arena, &cand.Analysis)
	}
	if err != nil {
		return false, fmt.Errorf("dse: analyzing %s/%s/%s: %w", uav.Name, comp.Name, cl.algo, err)
	}
	cand.Selection = catalog.Selection{UAV: uav.Name, Compute: comp.Name, Algorithm: cl.algo, Sensor: sc.name}
	cand.Power = comp.TDP
	return p.cons.Allows(*cand), nil
}

// candidateScoredInto is the objective path of candidateInto: the
// partial combine produces the analysis, the constraints prune, and
// only surviving candidates pay the evaluator — a pruned candidate
// never runs a Monte-Carlo simulation and never occupies a scored
// cache entry. With memoization on, (analysis, metrics) are cached
// together under the (Config, objective, seed) ScoreKey, so re-
// exploring a popular space under the same objective replays from the
// cache, while the same Config under another objective — or another
// seed — fills its own entry. Monte-Carlo evaluators get a
// per-candidate seed mixed from the base seed and the candidate
// identity, which is what keeps results identical across worker counts
// and steal interleavings.
//
//reprolint:hotpath
func (p *plan) candidateScoredInto(ctx context.Context, cl *cell, sc *sensorChoice, uav *catalog.UAV, comp *catalog.Compute, mp *core.ModelPartial, sensorStage, controlStage core.Stage, cand *Candidate, arena *[]core.Ceiling) (ok bool, err error) {
	var seed int64
	if p.objSeed != 0 {
		seed = candSeed(p.objSeed, cl.name, sc.name)
	}
	cand.Selection = catalog.Selection{UAV: uav.Name, Compute: comp.Name, Algorithm: cl.algo, Sensor: sc.name}
	cand.Power = comp.TDP
	if !p.memoized {
		if err = core.AnalyzeWithPartialInto(mp, cl.name, sensorStage, cl.stage, controlStage, arena, &cand.Analysis); err != nil {
			return false, fmt.Errorf("dse: analyzing %s/%s/%s: %w", uav.Name, comp.Name, cl.algo, err)
		}
		if !p.cons.Allows(*cand) {
			return false, nil
		}
		metrics := make([]float64, len(p.objCols))
		if err = p.obj.Evaluate(ctx, cand, seed, metrics); err != nil {
			return false, fmt.Errorf("dse: objective %s on %s/%s/%s: %w", p.objName, uav.Name, comp.Name, cl.algo, err)
		}
		cand.Metrics = metrics
		return true, nil
	}
	// Probe before any allocation: the hit path — a server re-exploring
	// a popular space under one objective — costs a lookup.
	key := core.ScoreKey{
		Cfg:       mp.Config(cl.name, sensorStage, cl.stage, controlStage),
		Objective: p.objName,
		Seed:      seed,
	}
	var hit bool
	if cand.Analysis, cand.Metrics, hit = p.cache.LookupScored(key); hit {
		return p.cons.Allows(*cand), nil
	}
	// Miss: combine first, outside the cache, so constraint-pruned
	// candidates never pay the evaluator. The name is cloned before the
	// analysis can reach the cache — cl.name is a substring of the
	// plan-wide name buffer, and a cached key holding it would pin that
	// whole buffer (see candidateInto).
	name := strings.Clone(cl.name)
	cand.Analysis, err = core.AnalyzeWithPartial(mp, name, sensorStage, cl.stage, controlStage)
	if err != nil {
		return false, fmt.Errorf("dse: analyzing %s/%s/%s: %w", uav.Name, comp.Name, cl.algo, err)
	}
	if !p.cons.Allows(*cand) {
		return false, nil
	}
	key.Cfg.Name = name
	an := cand.Analysis
	//reprolint:allow hotpathalloc the fill closure is built only on the cache-miss path, which allocates anyway
	cand.Analysis, cand.Metrics, err = p.cache.AnalyzeScoredContextFunc(ctx, key, func() (core.Analysis, []float64, error) {
		scored := Candidate{Selection: cand.Selection, Analysis: an, Power: comp.TDP}
		metrics := make([]float64, len(p.objCols))
		if err := p.obj.Evaluate(ctx, &scored, seed, metrics); err != nil {
			return core.Analysis{}, nil, err
		}
		return an, metrics, nil
	})
	if err != nil {
		return false, fmt.Errorf("dse: objective %s on %s/%s/%s: %w", p.objName, uav.Name, comp.Name, cl.algo, err)
	}
	return true, nil
}

// processChunk analyzes candidates [start,end), returning the survivors
// in order. On error — including cancellation of ctx, checked between
// candidates so in-flight chunks abort instead of draining — it returns
// the survivors found before the failing candidate together with the
// error. A panicking analysis (corrupt model data, an armed fault) is
// recovered into an error rather than unwinding: chunks run on pool
// goroutines, where an escaped panic would kill the whole process
// instead of failing one request.
func (p *plan) processChunk(ctx context.Context, start, end int) (out []Candidate, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("dse: panic analyzing candidates [%d,%d): %v", start, end, r)
		}
	}()
	if err := faultinject.Fire(faultinject.SiteDSEChunk); err != nil {
		return nil, fmt.Errorf("dse: chunk [%d,%d): %w", start, end, err)
	}
	return p.processChunkBody(ctx, start, end)
}

//reprolint:hotpath
func (p *plan) processChunkBody(ctx context.Context, start, end int) ([]Candidate, error) {
	done := ctx.Done() // one channel load; the per-candidate check is a cheap select
	out := make([]Candidate, 0, end-start)
	// One Ceilings block per chunk (up to 3 per candidate): the chunk's
	// survivors collectively own it, exactly like the out slice itself.
	// The memoized path allocates exact-size slices instead (a cached
	// entry must not pin a block), so skip the arena there.
	var arena *[]core.Ceiling
	if !p.memoized {
		// Capped: the serial ExploreContext path routes the whole space
		// through one chunk, and the combine rolls over to fresh blocks
		// anyway when a block fills.
		a := make([]core.Ceiling, 0, 3*min(end-start, 1024))
		arena = &a
	}
	for i := start; i < end; i++ {
		select {
		case <-done:
			return out, ctx.Err()
		default:
		}
		// Extend first and analyze into the new slot, truncating on a
		// rejection: survivors are written in place, never copied.
		out = out[:len(out)+1]
		ok, err := p.candidateInto(ctx, i, &out[len(out)-1], arena)
		if err != nil {
			return out[:len(out)-1], err
		}
		if !ok {
			out = out[:len(out)-1]
		}
	}
	return out, nil
}

// Candidates streams the exploration as an iterator: candidates arrive
// in canonical (UAV, compute, algorithm, sensor) order regardless of
// the worker count, and callers can stop early — remaining work is
// cancelled, not drained. Cancelling ctx (a client disconnect, a
// deadline) likewise stops in-flight chunks between candidates and
// surfaces ctx's error. A non-nil error is the final element.
func (e Explorer) Candidates(ctx context.Context) iter.Seq2[Candidate, error] {
	return func(yield func(Candidate, error) bool) {
		if ctx == nil {
			//reprolint:allow ctxflow nil-ctx compatibility guard, documented as running uncancellable
			ctx = context.Background()
		}
		p, err := newPlan(e.Catalog, e.Space, e.Constraints, e.cache(), e.Objective)
		if err != nil {
			yield(Candidate{}, err)
			return
		}
		n := p.total()
		if n == 0 {
			return
		}
		workers := e.workers()
		grain := e.grain(n, workers)
		if workers == 1 || n <= grain {
			done := ctx.Done()
			var cand Candidate
			// Block-granular arena (non-memoized only): yielded
			// candidates may be retained by the consumer, so exhausted
			// blocks are simply left to them and fresh ones started
			// (inside the combine).
			var arena *[]core.Ceiling
			if !p.memoized {
				a := make([]core.Ceiling, 0, 3*min(n, 1024))
				arena = &a
			}
			for i := 0; i < n; i++ {
				select {
				case <-done:
					yield(Candidate{}, ctx.Err())
					return
				default:
				}
				ok, err := p.candidateInto(ctx, i, &cand, arena)
				if err != nil {
					yield(Candidate{}, err)
					return
				}
				if ok && !yield(cand, nil) {
					return
				}
			}
			return
		}
		for cands, err := range streamStealing(ctx, p, n, grain, workers) {
			for _, c := range cands {
				if !yield(c, nil) {
					return
				}
			}
			if err != nil {
				yield(Candidate{}, err)
				return
			}
		}
	}
}

// ExploreContext collects the full exploration, honoring ctx: on
// cancellation the workers stop between candidates and the context's
// error is returned. The result is identical — same candidates, same
// order — for every worker count.
func (e Explorer) ExploreContext(ctx context.Context) ([]Candidate, error) {
	if ctx == nil {
		//reprolint:allow ctxflow nil-ctx compatibility guard, documented as running uncancellable
		ctx = context.Background()
	}
	var out []Candidate
	p, err := newPlan(e.Catalog, e.Space, e.Constraints, e.cache(), e.Objective)
	if err != nil {
		return nil, err
	}
	n := p.total()
	workers := e.workers()
	grain := e.grain(n, workers)
	if workers == 1 || n <= grain {
		// Serial: one output allocation, no handoff buffers.
		cands, err := p.processChunk(ctx, 0, n)
		if err != nil {
			return nil, err
		}
		return cands, nil
	}
	for cands, err := range streamStealing(ctx, p, n, grain, workers) {
		out = append(out, cands...)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Enumerate collects the full exploration without a cancellation
// context — ExploreContext with context.Background().
//
//reprolint:ctxshim documented no-context convenience wrapper; request paths use ExploreContext
func (e Explorer) Enumerate() ([]Candidate, error) {
	return e.ExploreContext(context.Background())
}

// Enumerate analyzes every combination in the space using the parallel
// engine with default settings. Unknown axis values — including
// algorithm names the catalog has never registered — are errors;
// combinations with no performance-table entry (a registered algorithm
// never measured on a platform) are skipped silently, as they are not
// buildable systems. Other analysis errors abort the exploration.
func Enumerate(cat *catalog.Catalog, space Space, cons Constraints) ([]Candidate, error) {
	return Explorer{Catalog: cat, Space: space, Constraints: cons}.Enumerate()
}
