package dse

import (
	"context"
	"fmt"
	"iter"
	"runtime"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/units"
)

// Explorer is the design-space exploration engine: it fans the
// (UAV × compute × algorithm × sensor) cross product out across the
// package's work-stealing scheduler and streams the surviving
// candidates in the canonical serial order, so parallel output is
// element-for-element identical to Workers=1 output even when the
// space is skewed and cells rebalance between workers mid-flight.
type Explorer struct {
	Catalog     *catalog.Catalog
	Space       Space
	Constraints Constraints
	// Workers bounds the pool: 0 picks GOMAXPROCS, 1 runs serially
	// inline (no goroutines).
	Workers int
	// ChunkSize is the scheduler's claim grain — the number of
	// candidates a worker takes from its deque at once; 0 picks a size
	// that rebalances skewed cells without measurable claim overhead.
	ChunkSize int
	// Cache memoizes analyses across explorations (e.g. a server
	// re-exploring after a constraint tweak). Nil selects the
	// process-wide core.SharedCache; core.CacheOff() disables
	// memoization entirely (e.g. a benchmark isolating the engine).
	Cache *core.Cache
}

// cache resolves the effective analysis cache.
func (e Explorer) cache() *core.Cache {
	if e.Cache != nil {
		return e.Cache
	}
	return core.SharedCache()
}

// workers resolves the effective pool size.
func (e Explorer) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// grain resolves the scheduler's claim quantum for n candidates.
func (e Explorer) grain(n, workers int) int {
	if e.ChunkSize > 0 {
		return e.ChunkSize
	}
	return stealGrain(n, workers)
}

// plan is the pre-resolved exploration: every catalog lookup is done
// once per axis value here, so building candidate i is pure arithmetic
// plus one core.Analyze call.
type plan struct {
	cons  Constraints
	cache *core.Cache
	uavs  []catalog.UAV
	// computes and computeMass are parallel: computeMass[i] is
	// computes[i].TotalMass under the catalog's heatsink model.
	computes    []catalog.Compute
	computeMass []units.Mass
	sensors     []sensorChoice
	// cells enumerates the buildable (UAV, compute, algorithm) triples
	// in canonical order; each crosses with every sensor choice.
	cells []cell
}

// sensorChoice is one value of the sensor axis: a named catalog sensor,
// or the UAV's default (the empty name).
type sensorChoice struct {
	name       string
	spec       catalog.Sensor
	useDefault bool
}

// cell is one buildable (UAV, compute, algorithm) triple with its
// measured throughput and precomputed configuration name.
type cell struct {
	u, c int
	algo string
	rate units.Frequency
	name string
}

// total is the number of candidates the plan will visit.
func (p *plan) total() int { return len(p.cells) * len(p.sensors) }

// newPlan resolves the space against the catalog. Unknown UAVs,
// computes, sensors and algorithms are errors (as in the serial
// engine, which hit them on the first analysis); a registered
// algorithm without a performance-table row on a given compute is
// silently skipped — that combination is not a buildable system.
func newPlan(cat *catalog.Catalog, space Space, cons Constraints, cache *core.Cache) (*plan, error) {
	if len(space.UAVs) == 0 || len(space.Computes) == 0 || len(space.Algorithms) == 0 {
		return nil, fmt.Errorf("dse: space must name at least one UAV, compute and algorithm")
	}
	p := &plan{cons: cons, cache: cache}
	p.uavs = make([]catalog.UAV, len(space.UAVs))
	for i, name := range space.UAVs {
		u, err := cat.UAV(name)
		if err != nil {
			return nil, fmt.Errorf("dse: resolving UAV %q: %w", name, err)
		}
		p.uavs[i] = u
	}
	p.computes = make([]catalog.Compute, len(space.Computes))
	p.computeMass = make([]units.Mass, len(space.Computes))
	for i, name := range space.Computes {
		c, err := cat.Compute(name)
		if err != nil {
			return nil, fmt.Errorf("dse: resolving compute %q: %w", name, err)
		}
		p.computes[i] = c
		p.computeMass[i] = c.TotalMass(cat.Heatsink)
	}
	sensorNames := space.Sensors
	if len(sensorNames) == 0 {
		sensorNames = []string{""}
	}
	p.sensors = make([]sensorChoice, len(sensorNames))
	for i, name := range sensorNames {
		if name == "" {
			p.sensors[i] = sensorChoice{useDefault: true}
			continue
		}
		s, err := cat.Sensor(name)
		if err != nil {
			return nil, fmt.Errorf("dse: resolving sensor %q: %w", name, err)
		}
		p.sensors[i] = sensorChoice{name: name, spec: s}
	}
	// Rate lookups once per (algorithm × compute) pair — not once per
	// candidate — and the configuration name once per cell.
	type algoRates struct {
		rates []units.Frequency // parallel to p.computes; <0 = unmeasured
	}
	perAlgo := make([]algoRates, len(space.Algorithms))
	for ai, algo := range space.Algorithms {
		// Validation parity with the UAV/compute/sensor axes: an
		// algorithm the catalog has never heard of is a caller error,
		// surfaced at plan time — not a silently empty exploration. A
		// registered algorithm merely lacking perf rows on the requested
		// computes is different: those combinations are simply not
		// buildable and are skipped below.
		if _, err := cat.Algorithm(algo); err != nil {
			return nil, fmt.Errorf("dse: resolving algorithm %q: %w", algo, err)
		}
		rates := make([]units.Frequency, len(space.Computes))
		for ci, comp := range space.Computes {
			r, err := cat.Perf(algo, comp)
			if err != nil {
				rates[ci] = -1
				continue
			}
			rates[ci] = r
		}
		perAlgo[ai] = algoRates{rates: rates}
	}
	for ui := range space.UAVs {
		for ci := range space.Computes {
			for ai, algo := range space.Algorithms {
				rate := perAlgo[ai].rates[ci]
				if rate < 0 {
					continue // not a buildable combination
				}
				p.cells = append(p.cells, cell{
					u: ui, c: ci, algo: algo, rate: rate,
					// Concatenation, not Sprintf: one allocation, and
					// byte-identical to catalog.Resolved.Name.
					name: space.UAVs[ui] + " + " + algo + " + " + space.Computes[ci],
				})
			}
		}
	}
	return p, nil
}

// candidate builds and analyzes candidate i. ok is false when the
// constraints reject it.
func (p *plan) candidate(i int) (cand Candidate, ok bool, err error) {
	cl := &p.cells[i/len(p.sensors)]
	sc := &p.sensors[i%len(p.sensors)]
	uav := &p.uavs[cl.u]
	comp := &p.computes[cl.c]
	sensor := sc.spec
	if sc.useDefault {
		sensor = uav.DefaultSensor
	}
	sel := catalog.Selection{UAV: uav.Name, Compute: comp.Name, Algorithm: cl.algo, Sensor: sc.name}
	r := catalog.Resolved{
		Selection:   sel,
		UAV:         *uav,
		Compute:     *comp,
		Sensor:      sensor,
		ComputeRate: cl.rate,
		ComputeMass: p.computeMass[cl.c],
	}
	an, err := p.cache.Analyze(r.ConfigNamed(cl.name))
	if err != nil {
		return Candidate{}, false, fmt.Errorf("dse: analyzing %s/%s/%s: %w", uav.Name, comp.Name, cl.algo, err)
	}
	cand = Candidate{Selection: sel, Analysis: an, Power: comp.TDP}
	return cand, p.cons.Allows(cand), nil
}

// processChunk analyzes candidates [start,end), returning the survivors
// in order. On error — including cancellation of ctx, checked between
// candidates so in-flight chunks abort instead of draining — it returns
// the survivors found before the failing candidate together with the
// error.
func (p *plan) processChunk(ctx context.Context, start, end int) ([]Candidate, error) {
	done := ctx.Done() // one channel load; the per-candidate check is a cheap select
	out := make([]Candidate, 0, end-start)
	for i := start; i < end; i++ {
		select {
		case <-done:
			return out, ctx.Err()
		default:
		}
		cand, ok, err := p.candidate(i)
		if err != nil {
			return out, err
		}
		if ok {
			out = append(out, cand)
		}
	}
	return out, nil
}

// Candidates streams the exploration as an iterator: candidates arrive
// in canonical (UAV, compute, algorithm, sensor) order regardless of
// the worker count, and callers can stop early — remaining work is
// cancelled, not drained. Cancelling ctx (a client disconnect, a
// deadline) likewise stops in-flight chunks between candidates and
// surfaces ctx's error. A non-nil error is the final element.
func (e Explorer) Candidates(ctx context.Context) iter.Seq2[Candidate, error] {
	return func(yield func(Candidate, error) bool) {
		if ctx == nil {
			ctx = context.Background()
		}
		p, err := newPlan(e.Catalog, e.Space, e.Constraints, e.cache())
		if err != nil {
			yield(Candidate{}, err)
			return
		}
		n := p.total()
		if n == 0 {
			return
		}
		workers := e.workers()
		grain := e.grain(n, workers)
		if workers == 1 || n <= grain {
			done := ctx.Done()
			for i := 0; i < n; i++ {
				select {
				case <-done:
					yield(Candidate{}, ctx.Err())
					return
				default:
				}
				cand, ok, err := p.candidate(i)
				if err != nil {
					yield(Candidate{}, err)
					return
				}
				if ok && !yield(cand, nil) {
					return
				}
			}
			return
		}
		for cands, err := range streamStealing(ctx, p, n, grain, workers) {
			for _, c := range cands {
				if !yield(c, nil) {
					return
				}
			}
			if err != nil {
				yield(Candidate{}, err)
				return
			}
		}
	}
}

// ExploreContext collects the full exploration, honoring ctx: on
// cancellation the workers stop between candidates and the context's
// error is returned. The result is identical — same candidates, same
// order — for every worker count.
func (e Explorer) ExploreContext(ctx context.Context) ([]Candidate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var out []Candidate
	p, err := newPlan(e.Catalog, e.Space, e.Constraints, e.cache())
	if err != nil {
		return nil, err
	}
	n := p.total()
	workers := e.workers()
	grain := e.grain(n, workers)
	if workers == 1 || n <= grain {
		// Serial: one output allocation, no handoff buffers.
		cands, err := p.processChunk(ctx, 0, n)
		if err != nil {
			return nil, err
		}
		return cands, nil
	}
	for cands, err := range streamStealing(ctx, p, n, grain, workers) {
		out = append(out, cands...)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Enumerate collects the full exploration without a cancellation
// context — ExploreContext with context.Background().
func (e Explorer) Enumerate() ([]Candidate, error) {
	return e.ExploreContext(context.Background())
}

// Enumerate analyzes every combination in the space using the parallel
// engine with default settings. Unknown axis values — including
// algorithm names the catalog has never registered — are errors;
// combinations with no performance-table entry (a registered algorithm
// never measured on a platform) are skipped silently, as they are not
// buildable systems. Other analysis errors abort the exploration.
func Enumerate(cat *catalog.Catalog, space Space, cons Constraints) ([]Candidate, error) {
	return Explorer{Catalog: cat, Space: space, Constraints: cons}.Enumerate()
}
