package dse

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/units"
)

func synthSpace(cat *catalog.Catalog) Space {
	return Space{
		UAVs:       cat.UAVNames(),
		Computes:   cat.ComputeNames(),
		Algorithms: cat.AlgorithmNames(),
	}
}

// requireEqualCandidates asserts element-for-element equality, with a
// useful message on the first divergence.
func requireEqualCandidates(t *testing.T, want, got []Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("candidate count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("candidate %d differs:\nwant %+v\ngot  %+v", i, want[i], got[i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	cat := catalog.Synthetic(4, 9, 7)
	space := synthSpace(cat)
	serial, err := Explorer{Catalog: cat, Space: space, Workers: 1}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4*9*7 {
		t.Fatalf("serial explored %d candidates, want %d", len(serial), 4*9*7)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		for _, chunk := range []int{0, 1, 7, 64, 10000} {
			par, err := Explorer{Catalog: cat, Space: space, Workers: workers, ChunkSize: chunk}.Enumerate()
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			requireEqualCandidates(t, serial, par)
		}
	}
}

func TestParallelMatchesSerialWithConstraints(t *testing.T) {
	cat := catalog.Synthetic(3, 8, 8)
	space := synthSpace(cat)
	cons := Constraints{MaxPower: units.Watts(20), MinVelocity: units.MetersPerSecond(1)}
	serial, err := Explorer{Catalog: cat, Space: space, Constraints: cons, Workers: 1}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 || len(serial) == 3*8*8 {
		t.Fatalf("constraints should prune some but not all (kept %d)", len(serial))
	}
	par, err := Explorer{Catalog: cat, Space: space, Constraints: cons, Workers: 6, ChunkSize: 5}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCandidates(t, serial, par)
}

func TestParallelMatchesSerialWithSensorAxis(t *testing.T) {
	cat := catalog.Default()
	space := Space{
		UAVs:       []string{catalog.UAVAscTecPelican, catalog.UAVDJISpark},
		Computes:   []string{catalog.ComputeNCS, catalog.ComputeTX2, catalog.ComputeRasPi4},
		Algorithms: []string{catalog.AlgoDroNet, catalog.AlgoTrailNet},
		Sensors:    []string{"", catalog.SensorRGBD, catalog.SensorNanoCam},
	}
	serial, err := Explorer{Catalog: cat, Space: space, Workers: 1}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	par, err := Explorer{Catalog: cat, Space: space, Workers: 4, ChunkSize: 3}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCandidates(t, serial, par)
	// The sensor axis multiplies the space.
	noSensors := space
	noSensors.Sensors = nil
	base, err := Enumerate(cat, noSensors, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 3*len(base) {
		t.Fatalf("sensor axis: got %d, want %d", len(serial), 3*len(base))
	}
}

func TestExplorerMatchesLegacyEnumerate(t *testing.T) {
	// The package-level Enumerate and the fig15 expectations from the
	// serial engine still hold (14 buildable pairs, see dse_test.go).
	cat := catalog.Default()
	cands, err := Enumerate(cat, fig15Space(), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Explorer{Catalog: cat, Space: fig15Space(), Workers: 1}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCandidates(t, serial, cands)
}

func TestCandidatesStreamMatchesEnumerate(t *testing.T) {
	cat := catalog.Synthetic(3, 7, 5)
	space := synthSpace(cat)
	for _, workers := range []int{1, 4} {
		e := Explorer{Catalog: cat, Space: space, Workers: workers, ChunkSize: 10}
		want, err := e.Enumerate()
		if err != nil {
			t.Fatal(err)
		}
		var got []Candidate
		for cand, err := range e.Candidates(context.Background()) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, cand)
		}
		requireEqualCandidates(t, want, got)
	}
}

func TestCandidatesEarlyBreak(t *testing.T) {
	cat := catalog.Synthetic(3, 7, 5)
	e := Explorer{Catalog: cat, Space: synthSpace(cat), Workers: 4, ChunkSize: 4}
	full, err := e.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for _, stop := range []int{0, 1, 5, 17, 50} {
		var got []Candidate
		for cand, err := range e.Candidates(context.Background()) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, cand)
			if len(got) == stop {
				break
			}
		}
		if stop > 0 && len(got) != stop {
			t.Fatalf("early break at %d collected %d", stop, len(got))
		}
		requireEqualCandidates(t, full[:len(got)], got)
	}
}

func TestExplorerSharedCache(t *testing.T) {
	cat := catalog.Synthetic(2, 5, 5)
	cache := core.NewCache()
	e := Explorer{Catalog: cat, Space: synthSpace(cat), Workers: 4, ChunkSize: 3, Cache: cache}
	first, err := e.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("cache stayed empty")
	}
	second, err := e.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCandidates(t, first, second)
	// And against an uncached run.
	plain, err := Explorer{Catalog: cat, Space: e.Space, Workers: 1, Cache: core.CacheOff()}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCandidates(t, plain, second)
}

func TestExplorerCacheDefaults(t *testing.T) {
	// A default Explorer joins the process-wide cache; an explicit cache
	// wins; core.CacheOff opts out of memoization entirely.
	if (Explorer{}).cache() != core.SharedCache() {
		t.Error("nil Cache did not resolve to core.SharedCache")
	}
	own := core.NewCacheLimit(16)
	if (Explorer{Cache: own}).cache() != own {
		t.Error("explicit cache not honored")
	}
	off := core.CacheOff()
	if (Explorer{Cache: off}).cache() != off {
		t.Error("CacheOff not honored")
	}
	cat := catalog.Synthetic(1, 2, 2)
	e := Explorer{Catalog: cat, Space: synthSpace(cat), Cache: off}
	if _, err := e.Enumerate(); err != nil {
		t.Fatal(err)
	}
	if off.Len() != 0 {
		t.Errorf("CacheOff retained %d entries", off.Len())
	}
}

func TestExplorerUnknownAxisValues(t *testing.T) {
	cat := catalog.Default()
	base := fig15Space()
	for name, mutate := range map[string]func(*Space){
		"uav":     func(s *Space) { s.UAVs = []string{"bogus"} },
		"compute": func(s *Space) { s.Computes = []string{"bogus"} },
		"sensor":  func(s *Space) { s.Sensors = []string{"bogus"} },
	} {
		sp := base
		mutate(&sp)
		if _, err := Enumerate(cat, sp, Constraints{}); err == nil {
			t.Errorf("unknown %s accepted", name)
		}
		// Streaming surfaces the same error.
		e := Explorer{Catalog: cat, Space: sp, Workers: 4}
		var sawErr bool
		for _, err := range e.Candidates(context.Background()) {
			if err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Errorf("unknown %s not surfaced by Candidates", name)
		}
	}
}

func TestExplorerUnknownAlgorithmErrors(t *testing.T) {
	// Validation parity with the other axes: an algorithm name the
	// catalog has never registered is a plan error, not a silently
	// empty (or silently shrunken) exploration — previously a typo'd
	// algorithm with no perf rows skipped the existence check entirely.
	cat := catalog.Default()
	sp := fig15Space()
	sp.Algorithms = append(sp.Algorithms, "never-measured")
	if _, err := Enumerate(cat, sp, Constraints{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Streaming surfaces the same error.
	var sawErr bool
	for _, err := range (Explorer{Catalog: cat, Space: sp, Workers: 4}).Candidates(context.Background()) {
		if err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("unknown algorithm not surfaced by Candidates")
	}
}

func TestExplorerMeasurelessAlgorithmSkippedSilently(t *testing.T) {
	// A REGISTERED algorithm that merely lacks perf-table rows on the
	// requested computes is not a buildable system: its combinations
	// are skipped without shrinking or failing the rest of the space.
	cat := catalog.Default()
	cat.AddAlgorithm(catalog.Algorithm{Name: "registered-unmeasured", Paradigm: catalog.EndToEnd})
	sp := fig15Space()
	sp.Algorithms = append(sp.Algorithms, "registered-unmeasured")
	with, err := Enumerate(cat, sp, Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Enumerate(cat, fig15Space(), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCandidates(t, without, with)
}

func TestExplorerUnregisteredAlgorithmWithPerfRowErrors(t *testing.T) {
	// A perf measurement for an algorithm that was never registered is
	// a catalog inconsistency the serial engine surfaced on the first
	// analysis; the plan surfaces it up front.
	cat := catalog.Default()
	cat.SetPerf("ghost-net", catalog.ComputeTX2, units.Hertz(100))
	sp := fig15Space()
	sp.Algorithms = []string{"ghost-net"}
	if _, err := Enumerate(cat, sp, Constraints{}); err == nil {
		t.Fatal("unregistered algorithm with perf row accepted")
	}
}

func TestExplorerChunkBoundariesCoverSpace(t *testing.T) {
	// Chunk sizes that divide the space exactly, leave a remainder of
	// one, and exceed the space must all visit every candidate once.
	cat := catalog.Synthetic(2, 5, 5) // 50 candidates
	space := synthSpace(cat)
	want, err := Explorer{Catalog: cat, Space: space, Workers: 1}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 50 {
		t.Fatalf("space size %d, want 50", len(want))
	}
	for _, chunk := range []int{1, 2, 5, 7, 25, 49, 50, 51, 1000} {
		got, err := Explorer{Catalog: cat, Space: space, Workers: 3, ChunkSize: chunk}.Enumerate()
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		requireEqualCandidates(t, want, got)
	}
}

func TestExplorerLargeSpaceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large space")
	}
	cat := catalog.Synthetic(5, 16, 16) // 1280 candidates
	space := synthSpace(cat)
	serial, err := Explorer{Catalog: cat, Space: space, Workers: 1}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 1280 {
		t.Fatalf("space size %d, want 1280", len(serial))
	}
	par, err := Explorer{Catalog: cat, Space: space, Workers: 8}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCandidates(t, serial, par)
}

func TestExplorerDeterministicAcrossRuns(t *testing.T) {
	cat := catalog.Synthetic(3, 6, 6)
	e := Explorer{Catalog: cat, Space: synthSpace(cat), Workers: 5, ChunkSize: 3}
	first, err := e.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, err := e.Enumerate()
		if err != nil {
			t.Fatal(err)
		}
		requireEqualCandidates(t, first, again)
	}
}

func TestExplorerNamePrecomputation(t *testing.T) {
	// Candidate names must match what catalog.BuildConfig renders.
	cat := catalog.Default()
	cands, err := Enumerate(cat, fig15Space(), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		want := fmt.Sprintf("%s + %s + %s", c.Selection.UAV, c.Selection.Algorithm, c.Selection.Compute)
		if c.Name() != want {
			t.Fatalf("name %q, want %q", c.Name(), want)
		}
		cfg, err := cat.BuildConfig(c.Selection)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cfg, c.Analysis.Config) {
			t.Fatalf("explorer config diverges from BuildConfig for %s", c.Name())
		}
	}
}

// goroutineCount waits for transient goroutines to wind down and
// returns the stable count.
func goroutineCount(t *testing.T, baseline int, within time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(within)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestCandidatesEarlyBreakLeavesNoGoroutines is the leak regression for
// the early-exit streaming path: breaking out of Candidates after the
// first element must wind the worker pool down to baseline — no worker
// may stay blocked on a handoff channel, and in-flight chunks must be
// cancelled rather than drained.
func TestCandidatesEarlyBreakLeavesNoGoroutines(t *testing.T) {
	cat := catalog.Synthetic(5, 16, 16) // 1280 candidates
	e := Explorer{Catalog: cat, Space: synthSpace(cat), Workers: 8, ChunkSize: 16}
	baseline := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		for cand, err := range e.Candidates(context.Background()) {
			if err != nil {
				t.Fatal(err)
			}
			_ = cand
			break // early exit after the first candidate
		}
	}
	if n := goroutineCount(t, baseline, 2*time.Second); n > baseline {
		t.Fatalf("goroutines after early break: %d, baseline %d — pool leaked workers", n, baseline)
	}
}

func TestCandidatesContextCancel(t *testing.T) {
	cat := catalog.Synthetic(4, 10, 8) // 320 candidates
	for _, workers := range []int{1, 6} {
		e := Explorer{Catalog: cat, Space: synthSpace(cat), Workers: workers, ChunkSize: 8}
		ctx, cancel := context.WithCancel(context.Background())
		var got []Candidate
		var sawErr error
		for cand, err := range e.Candidates(ctx) {
			if err != nil {
				sawErr = err
				break
			}
			got = append(got, cand)
			if len(got) == 3 {
				cancel()
			}
		}
		cancel()
		if sawErr == nil {
			t.Fatalf("workers=%d: cancelled exploration completed without error (yielded %d)", workers, len(got))
		}
		if !errors.Is(sawErr, context.Canceled) {
			t.Fatalf("workers=%d: error = %v, want context.Canceled", workers, sawErr)
		}
		// The candidates yielded before cancellation are still the
		// canonical prefix.
		full, err := Explorer{Catalog: cat, Space: e.Space, Workers: 1}.Enumerate()
		if err != nil {
			t.Fatal(err)
		}
		requireEqualCandidates(t, full[:len(got)], got)
	}
}

func TestExploreContextCancelled(t *testing.T) {
	cat := catalog.Synthetic(4, 10, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead
	for _, workers := range []int{1, 6} {
		e := Explorer{Catalog: cat, Space: synthSpace(cat), Workers: workers, ChunkSize: 8}
		cands, err := e.ExploreContext(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if cands != nil {
			t.Fatalf("workers=%d: cancelled exploration returned %d candidates", workers, len(cands))
		}
	}
}

func TestExploreContextMatchesEnumerate(t *testing.T) {
	cat := catalog.Synthetic(3, 7, 5)
	e := Explorer{Catalog: cat, Space: synthSpace(cat), Workers: 4, ChunkSize: 10}
	want, err := e.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.ExploreContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCandidates(t, want, got)
}
