package dse

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
)

// ObjectiveColumn names one metric an Evaluator emits and its sense:
// Maximize=false columns are costs (lower is better). Rank, TopK and
// ParetoFront consume the sense through ColumnObjective, so "rank by
// mission time" and "rank by endurance" both read naturally.
type ObjectiveColumn struct {
	Name     string
	Maximize bool
}

// Evaluator scores candidates under a mission-level figure of merit,
// composed by the plan *after* the allocation-free partial combine: it
// consumes the finished core.Analysis plus the resolved catalog
// selection and writes one value per Columns() entry into out.
//
// Contract:
//
//   - Columns() is fixed for the evaluator's lifetime; len(out) equals
//     len(Columns()) on every Evaluate call.
//   - Evaluate must be safe for concurrent use: the work-stealing
//     scheduler calls it from every worker. All per-candidate state —
//     including any RNG — must be local to the call.
//   - Monte-Carlo evaluators derive their randomness from the seed
//     argument only (the plan mixes the base Seed() with the candidate
//     identity, so results are identical for every worker count and
//     steal interleaving) and must honor ctx between trials: a
//     cancelled request abandons the simulation mid-candidate.
//   - Seed() is the base seed for stochastic evaluators and 0 for
//     deterministic ones; 0 keeps the seed out of the cache key.
//   - A candidate the objective cannot score (a degenerate
//     configuration, an unwinnable scenario) is marked worst — -Inf in
//     Maximize columns, +Inf elsewhere — never NaN: the Pareto skyline
//     keeps NaN rows, so NaN would pollute every frontier.
//   - Evaluate must not retain cand or out after returning.
//
// See docs/OBJECTIVES.md for each registered objective's definition,
// units, determinism contract and relative cost.
type Evaluator interface {
	// Name is the registry name ("mission.endurance").
	Name() string
	// Seed is the base Monte-Carlo seed (0 = deterministic evaluator).
	Seed() int64
	// Columns describes the emitted metrics, in out-slice order.
	Columns() []ObjectiveColumn
	// Evaluate scores cand into out (len(out) == len(Columns())).
	Evaluate(ctx context.Context, cand *Candidate, seed int64, out []float64) error
}

// ColumnObjective adapts one evaluator column to the scalar Objective
// used by Best, Rank, TopK and ParetoFront: Maximize columns score as
// the metric itself, cost columns as its negation, so "higher is
// better" holds either way. Candidates without metrics (a plain,
// objective-less exploration) score -Inf.
func ColumnObjective(cols []ObjectiveColumn, idx int) Objective {
	maximize := cols[idx].Maximize
	return func(c Candidate) float64 {
		if idx >= len(c.Metrics) {
			return negInf
		}
		v := c.Metrics[idx]
		if !maximize {
			v = -v
		}
		return v
	}
}

// ColumnIndex resolves a metric column by name, -1 when absent.
func ColumnIndex(cols []ObjectiveColumn, name string) int {
	for i, c := range cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// worstMetrics marks a candidate the objective cannot score as
// dominated in every column: -Inf where higher is better, +Inf where
// lower is. Never NaN — the Pareto skyline retains NaN rows.
func worstMetrics(cols []ObjectiveColumn, out []float64) {
	for i, c := range cols {
		if c.Maximize {
			out[i] = negInf
		} else {
			out[i] = posInf
		}
	}
}

// objectiveBuilder constructs a registered evaluator against a catalog.
// seed is the caller's base Monte-Carlo seed; deterministic objectives
// ignore it.
type objectiveBuilder func(cat *catalog.Catalog, seed int64) Evaluator

// objectiveRegistry maps registry names to builders. Registration is
// static (package init) — the set is part of the HTTP API surface and
// is documented in docs/OBJECTIVES.md.
var objectiveRegistry = map[string]objectiveBuilder{
	"mission.endurance":  newEnduranceObjective,
	"mission.battery":    newBatteryObjective,
	"mission.thermal":    newThermalObjective,
	"mission.redundancy": newRedundancyObjective,
	"mission.flightsim":  newFlightsimObjective,
	"mission.stochastic": newStochasticObjective,
}

// ObjectiveNames returns the registered objective names, sorted — the
// valid set an unknown-objective error reports.
func ObjectiveNames() []string {
	out := make([]string, 0, len(objectiveRegistry))
	//reprolint:ordered names are sorted below before the slice is returned
	for name := range objectiveRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewObjective builds a registered evaluator. Stochastic objectives
// normalize a zero seed to 1, keeping "seed 0" distinct from the
// deterministic Seed()==0 contract. Unknown names report the valid set.
func NewObjective(name string, cat *catalog.Catalog, seed int64) (Evaluator, error) {
	b, ok := objectiveRegistry[name]
	if !ok {
		return nil, fmt.Errorf("dse: unknown objective %q (have %s)",
			name, strings.Join(ObjectiveNames(), ", "))
	}
	return b(cat, seed), nil
}

// candSeed mixes the base seed with the candidate identity (cell name +
// sensor choice, together unique within a plan) via FNV-1a, inlined so
// the per-candidate hot path allocates nothing. Mixing per candidate —
// rather than drawing from one shared stream — is what makes
// Monte-Carlo results identical across worker counts: each candidate's
// RNG stream depends only on (base seed, candidate), never on
// evaluation order.
func candSeed(base int64, name, sensor string) int64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
	h *= prime64
	for i := 0; i < len(sensor); i++ {
		h ^= uint64(sensor[i])
		h *= prime64
	}
	return base ^ int64(h)
}
