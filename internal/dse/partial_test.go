package dse

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/units"
)

// TestPlanPartialMatchesDirectAnalyze is the engine half of the
// partial-vs-direct equality hammer: every candidate the factored plan
// produces must carry the bit-identical analysis a from-scratch
// resolve + core.Analyze of its own Selection yields — across the real
// catalog (default and named sensors), the calibrated-table
// algorithm-heavy fixture and the skewed fixture.
func TestPlanPartialMatchesDirectAnalyze(t *testing.T) {
	cases := []struct {
		name  string
		cat   *catalog.Catalog
		space Space
	}{
		{
			name: "default-catalog-with-sensors",
			cat:  catalog.Default(),
			space: Space{
				UAVs:       []string{catalog.UAVAscTecPelican, catalog.UAVDJISpark},
				Computes:   []string{catalog.ComputeNCS, catalog.ComputeTX2, catalog.ComputeRasPi4},
				Algorithms: []string{catalog.AlgoDroNet, catalog.AlgoTrailNet},
				Sensors:    []string{"", catalog.SensorRGBD, catalog.SensorNanoCam},
			},
		},
		{name: "synthetic", cat: catalog.Synthetic(3, 5, 4)},
		{name: "algo-heavy-calibrated", cat: catalog.SyntheticAlgoHeavy(2, 3, 12)},
		{name: "skewed", cat: catalog.SyntheticSkewed(3, 4, 4, 50)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			space := tc.space
			if len(space.UAVs) == 0 {
				space = synthSpace(tc.cat)
			}
			cands, err := Explorer{Catalog: tc.cat, Space: space, Workers: 1, Cache: core.CacheOff()}.Enumerate()
			if err != nil {
				t.Fatal(err)
			}
			if len(cands) == 0 {
				t.Fatal("empty exploration")
			}
			for i, cand := range cands {
				r, err := tc.cat.Resolve(cand.Selection)
				if err != nil {
					t.Fatalf("candidate %d: re-resolving its own selection: %v", i, err)
				}
				want, err := core.Analyze(r.Config())
				if err != nil {
					t.Fatalf("candidate %d: direct analysis: %v", i, err)
				}
				if !reflect.DeepEqual(cand.Analysis, want) {
					t.Fatalf("candidate %d (%s): partial-evaluated analysis diverges from direct:\n got %+v\nwant %+v",
						i, cand.Name(), cand.Analysis, want)
				}
			}
		})
	}
}

// TestPlanPartialMatchesDirectThroughCache re-runs the hammer with a
// real cache: the miss path fills via the partial combine, and what
// lands in the cache — and what a second exploration then hits — must
// still be the direct analysis, bit for bit.
func TestPlanPartialMatchesDirectThroughCache(t *testing.T) {
	cat := catalog.SyntheticAlgoHeavy(2, 3, 8)
	space := synthSpace(cat)
	cache := core.NewCache()
	e := Explorer{Catalog: cat, Space: space, Workers: 1, Cache: cache}
	first, err := e.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses == 0 {
		t.Fatalf("cache saw no misses: %+v", st)
	}
	second, err := e.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("re-exploration hit nothing: %+v", st)
	}
	requireEqualCandidates(t, first, second)
	for i, cand := range first {
		r, err := cat.Resolve(cand.Selection)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Analyze(r.Config())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cand.Analysis, want) {
			t.Fatalf("candidate %d: cache-filled analysis diverges from direct", i)
		}
	}
}

// TestParallelMatchesSerialAlgoHeavy is the -race determinism hammer
// over the algorithm-heavy calibrated fixture: shared model partials
// must keep parallel output byte-identical to the serial scan for
// every worker count and grain.
func TestParallelMatchesSerialAlgoHeavy(t *testing.T) {
	cat := catalog.SyntheticAlgoHeavy(2, 4, 40)
	space := synthSpace(cat)
	serial, err := Explorer{Catalog: cat, Space: space, Workers: 1, Cache: core.CacheOff()}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 2*4*40 {
		t.Fatalf("serial explored %d candidates, want %d", len(serial), 2*4*40)
	}
	for _, workers := range []int{2, 4, 16} {
		for _, grain := range []int{0, 1, 13, 512} {
			par, err := Explorer{Catalog: cat, Space: space, Workers: workers, ChunkSize: grain, Cache: core.CacheOff()}.Enumerate()
			if err != nil {
				t.Fatalf("workers=%d grain=%d: %v", workers, grain, err)
			}
			requireEqualCandidates(t, serial, par)
		}
	}
}

// sweepTestConfig is a calibrated-table configuration, so the sweep
// partial reuse (and WithRange's a_max reuse) is exercised against the
// model whose per-point cost the factoring exists to avoid.
func sweepTestConfig(t *testing.T) core.Config {
	t.Helper()
	cat := catalog.SyntheticAlgoHeavy(2, 3, 4)
	cfg, err := cat.BuildConfig(catalog.Selection{
		UAV: "synth-uav-001", Compute: "synth-soc-002", Algorithm: "synth-net-003"})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestSweepPartialMatchesDirect: for every knob — including the
// payload knob's full-analysis fallback — each sweep point must be
// bit-identical to a direct Analyze of the knob-applied configuration.
func TestSweepPartialMatchesDirect(t *testing.T) {
	cfg := sweepTestConfig(t)
	knobs := []struct {
		knob   Knob
		lo, hi float64
		log    bool
	}{
		{KnobComputeRate, 0.5, 500, true},
		{KnobSensorRate, 1, 240, false},
		{KnobSensorRange, 0.5, 30, true},
		{KnobPayload, 20, 900, false},
	}
	for _, k := range knobs {
		t.Run(k.knob.String(), func(t *testing.T) {
			const n = 97 // above sweepSerialThreshold so the parallel path runs
			res, err := SweepContext(context.Background(), cfg, k.knob, k.lo, k.hi, n, k.log, 4)
			if err != nil {
				t.Fatal(err)
			}
			for i, pt := range res.Points {
				want, err := core.Analyze(k.knob.apply(cfg, pt.Value))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(pt.Analysis, want) {
					t.Fatalf("point %d (%v=%v): sweep analysis diverges from direct", i, k.knob, pt.Value)
				}
			}
		})
	}
}

// TestGridSweepPartialMatchesDirect covers the two-knob combinations:
// rate×rate, rate×range (WithRange per cell) and the payload fallback.
func TestGridSweepPartialMatchesDirect(t *testing.T) {
	cfg := sweepTestConfig(t)
	combos := []struct {
		x, y Knob
	}{
		{KnobComputeRate, KnobSensorRate},
		{KnobComputeRate, KnobSensorRange},
		{KnobSensorRange, KnobSensorRate},
		{KnobPayload, KnobComputeRate},
		{KnobComputeRate, KnobPayload},
	}
	for _, c := range combos {
		t.Run(c.x.String()+"/"+c.y.String(), func(t *testing.T) {
			res, err := GridSweepContext(context.Background(), cfg, c.x, 1, 200, 12, c.y, 2, 100, 11, 4)
			if err != nil {
				t.Fatal(err)
			}
			for yi := range res.Cells {
				for xi := range res.Cells[yi] {
					direct := c.y.apply(c.x.apply(cfg, res.Xs[xi]), res.Ys[yi])
					want, err := core.Analyze(direct)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res.Cells[yi][xi], want) {
						t.Fatalf("cell (%d,%d): grid analysis diverges from direct", xi, yi)
					}
				}
			}
		})
	}
}

// TestSyntheticAlgoHeavyDeterministic: two constructions are identical
// — the fixture contract the benches rely on.
func TestSyntheticAlgoHeavyDeterministic(t *testing.T) {
	a, err := Enumerate(catalog.SyntheticAlgoHeavy(2, 3, 10), synthSpace(catalog.SyntheticAlgoHeavy(2, 3, 10)), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(catalog.SyntheticAlgoHeavy(2, 3, 10), synthSpace(catalog.SyntheticAlgoHeavy(2, 3, 10)), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCandidates(t, a, b)
	if len(a) != 2*3*10 {
		t.Fatalf("algo-heavy fixture yields %d candidates, want %d", len(a), 2*3*10)
	}
	// The calibrated tables must actually be in play (not PitchLimited).
	u, err := catalog.SyntheticAlgoHeavy(2, 3, 10).UAV("synth-uav-000")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := u.Accel.(interface {
		At(units.Mass) units.Acceleration
	}); !ok {
		t.Fatalf("algo-heavy UAV carries %T, want a calibrated table", u.Accel)
	}
}
