// Package dse automates the paper's §VI-D full-system characterization
// and the conclusion's "automated design space exploration": enumerate
// every (UAV × compute × algorithm × sensor) combination in a catalog,
// analyze each with the F-1 model, filter by constraints, rank by
// objectives and extract the Pareto frontier.
//
// # Architecture
//
// The engine is built for catalogs far beyond the paper's handful of
// presets:
//
//   - Explorer (explore.go) pre-resolves every axis value against the
//     catalog once, then fans the cross product out across the
//     package's work-stealing scheduler (pool.go): per-worker deques
//     seeded with coarse contiguous index ranges, small claim grains,
//     and steal-half splitting when a worker runs dry — so skewed
//     spaces, where some cells analyze orders of magnitude slower than
//     others, rebalance dynamically instead of stalling the pool
//     behind one slow fixed-size chunk. Grain results are re-merged in
//     index order by a bounded reorder sink, so the output is
//     deterministic and element-for-element identical to a serial scan
//     for every worker count, grain size and steal interleaving.
//     Explorer.Candidates streams the space as an iter.Seq2, so
//     callers can filter or stop early without materializing it;
//     Explorer.ExploreContext (and its no-context shorthand Enumerate)
//     collects it. Both are request-scoped: cancelling the context — a
//     disconnected HTTP client, a deadline — stops in-flight grains
//     between candidates instead of draining the space.
//   - Analysis hot paths are partially evaluated (explore.go): the
//     plan resolves every catalog lookup once per axis value, renders
//     all cell names into one backing buffer, and precomputes the
//     factored pieces of the F-1 model — one core.ModelPartial per
//     distinct (airframe, payload, sensing range) triple (the a_max
//     lookup and knee/roof derivation; the algorithm axis never touches
//     the model, so algorithm-heavy spaces reuse each partial once per
//     algorithm) and one core.Stage per distinct sensor, algorithm-on-
//     compute and control rate. Building a candidate is then index math
//     plus the allocation-free core.AnalyzeWithPartial combine —
//     bit-identical to a from-scratch core.Analyze. An optional
//     core.Cache memoizes repeated analyses, probed allocation-free on
//     hits and filled through the partial combine on misses — with
//     context-aware singleflight, so concurrent explorations of
//     overlapping spaces analyze each configuration once, and a
//     cancelled request abandons a coalesced wait instead of blocking
//     on another request's analysis.
//   - Sweep and GridSweep reuse the same factoring per point: a swept
//     rate rebuilds one Stage, a swept range goes through
//     ModelPartial.WithRange (reusing the a_max lookup), and only a
//     swept payload — the a_max lookup's own input — falls back to the
//     full analysis.
//   - An optional mission-level Evaluator (objective.go, mission.go)
//     scores each surviving candidate with the dormant simulation
//     packages the F-1 model abstracts away — endurance, battery sag,
//     thermal/payload packaging, TMR redundancy, flight simulation,
//     pipeline jitter — emitting named metric columns that Rank, TopK
//     and ParetoFront consume and the Skyline server streams. Scored
//     results memoize under (config, objective, seed); Monte-Carlo
//     evaluators derive each candidate's seed from its identity, so
//     parallel runs reproduce serial ones bit for bit. See
//     docs/OBJECTIVES.md for every objective, its columns, units and
//     the determinism/seed contract.
//   - Rank and TopK (this file) score every candidate exactly once;
//     TopK keeps a bounded heap instead of sorting the full slate.
//   - ParetoFront (pareto.go) runs the argmax set for one objective, a
//     sort-based O(n log n) skyline for two, and a sort-filter
//     block-nested-loop scan with early termination for three or more.
//   - Sweep and GridSweep (sweep.go) evaluate knob sweeps over the
//     same work-stealing scheduler with position-stable writes; they
//     are the engine behind the Skyline server's /sweep.svg and
//     /grid.svg and the experiment reproductions.
//
// The package's cross-cutting invariants — caller-supplied context
// flow, deterministic emission order, and the hot-path allocation
// discipline of the combine and scheduler (//reprolint:hotpath) — are
// mechanized by the internal/lint analyzers and gated in CI via
// cmd/reprolint; see docs/INVARIANTS.md for each invariant, its
// motivation, and the escape hatches.
package dse

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/units"
)

// Candidate is one explored configuration with its F-1 analysis.
type Candidate struct {
	Selection catalog.Selection
	Analysis  core.Analysis
	// Power is the compute platform's TDP (the payload side is already
	// inside the analysis).
	Power units.Power
	// Metrics are the mission-level metric columns, parallel to the
	// exploring Evaluator's Columns(); nil on plain (objective-less)
	// explorations. The slice may be shared with the analysis cache —
	// treat it as read-only.
	Metrics []float64
}

// Name renders the candidate's configuration name.
func (c Candidate) Name() string { return c.Analysis.Config.Name }

// Space is the cross product to explore.
type Space struct {
	UAVs       []string
	Computes   []string
	Algorithms []string
	// Sensors optionally overrides each UAV's default sensor (empty =
	// default only).
	Sensors []string
}

// Constraints prune candidates before ranking.
type Constraints struct {
	// MaxPayload rejects configurations whose payload exceeds it
	// (zero = unconstrained).
	MaxPayload units.Mass
	// MaxPower rejects compute platforms whose TDP exceeds it
	// (zero = unconstrained).
	MaxPower units.Power
	// MinVelocity rejects configurations below this safe velocity
	// (zero = unconstrained).
	MinVelocity units.Velocity
}

// Allows reports whether the candidate satisfies the constraints.
func (c Constraints) Allows(cand Candidate) bool {
	if c.MaxPayload > 0 && cand.Analysis.Config.Payload > c.MaxPayload {
		return false
	}
	if c.MaxPower > 0 && cand.Power > c.MaxPower {
		return false
	}
	if c.MinVelocity > 0 && cand.Analysis.SafeVelocity < c.MinVelocity {
		return false
	}
	return true
}

// Objective scores a candidate; higher is better.
type Objective func(Candidate) float64

// MaxVelocity ranks by safe velocity — the paper's primary objective.
func MaxVelocity(c Candidate) float64 { return c.Analysis.SafeVelocity.MetersPerSecond() }

// MinPower ranks by (negated) compute TDP.
func MinPower(c Candidate) float64 { return -c.Power.Watts() }

// MinPayload ranks by (negated) payload mass.
func MinPayload(c Candidate) float64 { return -c.Analysis.Config.Payload.Grams() }

// Balance ranks by closeness to the knee (1/GapFactor): balanced
// designs score 1, badly over/under-provisioned ones approach 0.
func Balance(c Candidate) float64 {
	g := c.Analysis.GapFactor
	if g <= 0 || math.IsInf(g, 1) {
		return 0
	}
	return 1 / g
}

// Best returns the highest-scoring candidate under the objective, with
// deterministic name-ordered tie breaking. It is a single pass that
// invokes the objective exactly once per candidate, and errors on an
// empty slate.
func Best(cands []Candidate, obj Objective) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, fmt.Errorf("dse: no candidates")
	}
	best := 0
	bestScore := obj(cands[0])
	for i := 1; i < len(cands); i++ {
		s := obj(cands[i])
		if s > bestScore || (s == bestScore && cands[i].Name() < cands[best].Name()) {
			best, bestScore = i, s
		}
	}
	return cands[best], nil
}

// Rank sorts candidates by descending objective score (stable,
// name-tie-broken) and returns a new slice. Scores are precomputed
// once — the objective runs n times, not O(n log n) times in the
// comparator.
func Rank(cands []Candidate, obj Objective) []Candidate {
	scores := make([]float64, len(cands))
	order := make([]int, len(cands))
	for i, c := range cands {
		scores[i] = obj(c)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return cands[ia].Name() < cands[ib].Name()
	})
	out := make([]Candidate, len(cands))
	for i, idx := range order {
		out[i] = cands[idx]
	}
	return out
}

// TopK returns the k highest-scoring candidates in rank order (score
// descending, name-ascending on ties) without sorting the full slate:
// a bounded min-heap keeps the cost at O(n log k). k >= len(cands)
// degenerates to Rank.
func TopK(cands []Candidate, obj Objective, k int) []Candidate {
	if k <= 0 || len(cands) == 0 {
		return nil
	}
	if k >= len(cands) {
		return Rank(cands, obj)
	}
	h := topKHeap{cands: cands, scores: make([]float64, len(cands))}
	for i, c := range cands {
		h.scores[i] = obj(c)
	}
	for i := range cands {
		if len(h.idx) < k {
			h.idx = append(h.idx, i)
			if len(h.idx) == k {
				heap.Init(&h)
			}
			continue
		}
		// Replace the heap minimum when candidate i ranks above it.
		if h.ranksAbove(i, h.idx[0]) {
			h.idx[0] = i
			heap.Fix(&h, 0)
		}
	}
	out := make([]Candidate, len(h.idx))
	for i := len(h.idx) - 1; i >= 0; i-- {
		out[i] = cands[heap.Pop(&h).(int)]
	}
	return out
}

// topKHeap is a min-heap of candidate indices under (score, name,
// input index) rank order, so the root is the weakest of the current
// top k. The index tie-break makes the order total — names alone are
// not unique (sensor variants of one cell share a name) — and matches
// the input-order stability of Rank.
type topKHeap struct {
	cands  []Candidate
	scores []float64
	idx    []int
}

// ranksAbove reports whether candidate a outranks candidate b.
func (h *topKHeap) ranksAbove(a, b int) bool {
	if h.scores[a] != h.scores[b] {
		return h.scores[a] > h.scores[b]
	}
	if na, nb := h.cands[a].Name(), h.cands[b].Name(); na != nb {
		return na < nb
	}
	return a < b
}

func (h *topKHeap) Len() int           { return len(h.idx) }
func (h *topKHeap) Less(i, j int) bool { return h.ranksAbove(h.idx[j], h.idx[i]) }
func (h *topKHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *topKHeap) Push(x any)         { h.idx = append(h.idx, x.(int)) }
func (h *topKHeap) Pop() (x any)       { x, h.idx = h.idx[len(h.idx)-1], h.idx[:len(h.idx)-1]; return }
