// Package dse automates the paper's §VI-D full-system characterization
// and the conclusion's "automated design space exploration": enumerate
// every (UAV × compute × algorithm) combination in a catalog, analyze
// each with the F-1 model, filter by constraints, rank by objectives and
// extract the Pareto frontier.
package dse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/units"
)

// Candidate is one explored configuration with its F-1 analysis.
type Candidate struct {
	Selection catalog.Selection
	Analysis  core.Analysis
	// Power is the compute platform's TDP (the payload side is already
	// inside the analysis).
	Power units.Power
}

// Name renders the candidate's configuration name.
func (c Candidate) Name() string { return c.Analysis.Config.Name }

// Space is the cross product to explore.
type Space struct {
	UAVs       []string
	Computes   []string
	Algorithms []string
	// Sensors optionally overrides each UAV's default sensor (empty =
	// default only).
	Sensors []string
}

// Constraints prune candidates before ranking.
type Constraints struct {
	// MaxPayload rejects configurations whose payload exceeds it
	// (zero = unconstrained).
	MaxPayload units.Mass
	// MaxPower rejects compute platforms whose TDP exceeds it
	// (zero = unconstrained).
	MaxPower units.Power
	// MinVelocity rejects configurations below this safe velocity
	// (zero = unconstrained).
	MinVelocity units.Velocity
}

// Allows reports whether the candidate satisfies the constraints.
func (c Constraints) Allows(cand Candidate) bool {
	if c.MaxPayload > 0 && cand.Analysis.Config.Payload > c.MaxPayload {
		return false
	}
	if c.MaxPower > 0 && cand.Power > c.MaxPower {
		return false
	}
	if c.MinVelocity > 0 && cand.Analysis.SafeVelocity < c.MinVelocity {
		return false
	}
	return true
}

// Enumerate analyzes every combination in the space. Combinations with
// no performance-table entry (an algorithm never measured on a platform)
// are skipped silently — they are not buildable systems. Other analysis
// errors abort the exploration.
func Enumerate(cat *catalog.Catalog, space Space, cons Constraints) ([]Candidate, error) {
	if len(space.UAVs) == 0 || len(space.Computes) == 0 || len(space.Algorithms) == 0 {
		return nil, fmt.Errorf("dse: space must name at least one UAV, compute and algorithm")
	}
	sensors := space.Sensors
	if len(sensors) == 0 {
		sensors = []string{""}
	}
	var out []Candidate
	for _, u := range space.UAVs {
		for _, comp := range space.Computes {
			for _, algo := range space.Algorithms {
				if _, err := cat.Perf(algo, comp); err != nil {
					continue // not a buildable combination
				}
				for _, sensor := range sensors {
					sel := catalog.Selection{UAV: u, Compute: comp, Algorithm: algo, Sensor: sensor}
					an, err := cat.Analyze(sel)
					if err != nil {
						return nil, fmt.Errorf("dse: analyzing %s/%s/%s: %w", u, comp, algo, err)
					}
					compSpec, err := cat.Compute(comp)
					if err != nil {
						return nil, err
					}
					cand := Candidate{Selection: sel, Analysis: an, Power: compSpec.TDP}
					if cons.Allows(cand) {
						out = append(out, cand)
					}
				}
			}
		}
	}
	return out, nil
}

// Objective scores a candidate; higher is better.
type Objective func(Candidate) float64

// MaxVelocity ranks by safe velocity — the paper's primary objective.
func MaxVelocity(c Candidate) float64 { return c.Analysis.SafeVelocity.MetersPerSecond() }

// MinPower ranks by (negated) compute TDP.
func MinPower(c Candidate) float64 { return -c.Power.Watts() }

// MinPayload ranks by (negated) payload mass.
func MinPayload(c Candidate) float64 { return -c.Analysis.Config.Payload.Grams() }

// Balance ranks by closeness to the knee (1/GapFactor): balanced
// designs score 1, badly over/under-provisioned ones approach 0.
func Balance(c Candidate) float64 {
	g := c.Analysis.GapFactor
	if g <= 0 || math.IsInf(g, 1) {
		return 0
	}
	return 1 / g
}

// Best returns the highest-scoring candidate under the objective, with
// deterministic name-ordered tie breaking. It errors on an empty slate.
func Best(cands []Candidate, obj Objective) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, fmt.Errorf("dse: no candidates")
	}
	best := cands[0]
	bestScore := obj(best)
	for _, c := range cands[1:] {
		s := obj(c)
		if s > bestScore || (s == bestScore && c.Name() < best.Name()) {
			best, bestScore = c, s
		}
	}
	return best, nil
}

// Rank sorts candidates by descending objective score (stable,
// name-tie-broken) and returns a new slice.
func Rank(cands []Candidate, obj Objective) []Candidate {
	out := make([]Candidate, len(cands))
	copy(out, cands)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := obj(out[i]), obj(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// ParetoFront returns the candidates not dominated under the given
// objectives (all maximized). A candidate dominates another when it is
// at least as good on every objective and strictly better on one.
// Result order follows the input.
func ParetoFront(cands []Candidate, objs ...Objective) ([]Candidate, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("dse: Pareto front needs at least one objective")
	}
	scores := make([][]float64, len(cands))
	for i, c := range cands {
		scores[i] = make([]float64, len(objs))
		for j, o := range objs {
			scores[i][j] = o(c)
		}
	}
	dominates := func(a, b []float64) bool {
		strict := false
		for k := range a {
			if a[k] < b[k] {
				return false
			}
			if a[k] > b[k] {
				strict = true
			}
		}
		return strict
	}
	var out []Candidate
	for i := range cands {
		dominated := false
		for j := range cands {
			if i != j && dominates(scores[j], scores[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, cands[i])
		}
	}
	return out, nil
}
