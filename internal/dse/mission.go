package dse

import (
	"context"
	"math"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/flightsim"
	"repro/internal/mission"
	"repro/internal/physics"
	"repro/internal/pipeline"
	"repro/internal/redundancy"
	"repro/internal/units"
)

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// Mission-model constants shared by the registered objectives. The
// values are representative, not tunable per request: an objective's
// meaning (and its cache entries) must not drift between requests.
// docs/OBJECTIVES.md records each choice and its provenance.
const (
	// missionRouteM / missionLegs: a 1 km survey flown as 4 stop-and-go
	// segments — long enough that cruise velocity dominates, short
	// enough that small packs can finish it.
	missionRouteM = 1000.0
	missionLegs   = 4
	// rotorFOM is the propulsive figure of merit for small quads.
	rotorFOM = 0.6
	// liPoCellV is the nominal per-cell voltage used to infer the
	// series cell count from a pack voltage.
	liPoCellV = 3.7
	// voterLatencyS is the TMR cross-check/vote step per decision.
	voterLatencyS = 1e-3
	// moduleFailRate is one compute module's failure rate in 1/s
	// (~0.036 per hour) for the redundancy mission-reliability model.
	moduleFailRate = 1e-5
	// flightsimTrials is the Monte-Carlo trial count per candidate,
	// matching the spirit of the paper's five trials per velocity point
	// with headroom for a stable success rate.
	flightsimTrials = 10
	// jitterSamples is the stochastic pipeline's per-candidate sample
	// count (the first 10 % are warm-up).
	jitterSamples = 400
	// sensorJitter/computeJitter/controlJitter are the per-stage
	// latency half-widths: sensors are near-isochronous, autonomy
	// compute is strongly input-dependent, flight control is tight.
	sensorJitter  = 0.05
	computeJitter = 0.30
	controlJitter = 0.02
)

// hoverPowerFor estimates the candidate airframe's hover power from
// the actuator-disk model, with the rotor disk derived from the frame:
// rotor radius ≈ a quarter of the motor-to-motor diagonal, the usual
// quadcopter layout.
func hoverPowerFor(u *catalog.UAV, payload units.Mass) (units.Power, error) {
	r := u.Frame.FrameSize.Meters() / 4
	n := u.Frame.MotorCount
	if n <= 0 {
		n = 4
	}
	area := float64(n) * math.Pi * r * r
	return mission.HoverPower(u.Frame.TakeoffMass(payload), area, rotorFOM)
}

// packVoltage is the UAV's nominal pack voltage (3S default when the
// preset leaves it unset).
func packVoltage(u *catalog.UAV) float64 {
	if u.BatteryVoltage > 0 {
		return u.BatteryVoltage
	}
	return 3 * liPoCellV
}

// --- mission.endurance -------------------------------------------------

// enduranceEval scores the downstream consequence the paper leads with
// (§I, §III-A): a faster safe velocity finishes the survey route sooner
// and, at near-constant rotorcraft power, cheaper.
type enduranceEval struct{ cat *catalog.Catalog }

func newEnduranceObjective(cat *catalog.Catalog, _ int64) Evaluator { return enduranceEval{cat} }

var enduranceColumns = []ObjectiveColumn{
	{Name: "mission_time_s"},
	{Name: "mission_energy_j"},
	{Name: "battery_margin", Maximize: true},
}

func (enduranceEval) Name() string               { return "mission.endurance" }
func (enduranceEval) Seed() int64                { return 0 }
func (enduranceEval) Columns() []ObjectiveColumn { return enduranceColumns }

func (e enduranceEval) Evaluate(_ context.Context, cand *Candidate, _ int64, out []float64) error {
	u, err := e.cat.UAV(cand.Selection.UAV)
	if err != nil {
		return err
	}
	an := &cand.Analysis
	hover, herr := hoverPowerFor(&u, an.Config.Payload)
	if herr != nil || an.SafeVelocity <= 0 || an.AMax <= 0 {
		worstMetrics(enduranceColumns, out)
		return nil
	}
	plan := mission.Plan{
		Route:        units.Meters(missionRouteM),
		Legs:         missionLegs,
		Cruise:       an.SafeVelocity,
		Accel:        an.AMax,
		HoverPower:   hover,
		ComputePower: cand.Power,
		Battery:      u.Battery.Energy(packVoltage(&u)),
	}
	res, err := plan.Evaluate()
	if err != nil {
		worstMetrics(enduranceColumns, out)
		return nil
	}
	out[0] = res.Time.Seconds()
	out[1] = res.Energy.Joules()
	out[2] = 1 - res.BatteryFraction
	return nil
}

// --- mission.battery ---------------------------------------------------

// batteryEval scores hover endurance on the sagging LiPo model: I²R
// losses and the low-voltage cutoff punish power-hungry compute
// non-linearly, which the nominal Fig. 2b numbers hide.
type batteryEval struct{ cat *catalog.Catalog }

func newBatteryObjective(cat *catalog.Catalog, _ int64) Evaluator { return batteryEval{cat} }

var batteryColumns = []ObjectiveColumn{
	{Name: "endurance_s", Maximize: true},
	{Name: "sag_frac"},
	{Name: "draw_w"},
}

func (batteryEval) Name() string               { return "mission.battery" }
func (batteryEval) Seed() int64                { return 0 }
func (batteryEval) Columns() []ObjectiveColumn { return batteryColumns }

func (e batteryEval) Evaluate(_ context.Context, cand *Candidate, _ int64, out []float64) error {
	u, err := e.cat.UAV(cand.Selection.UAV)
	if err != nil {
		return err
	}
	hover, herr := hoverPowerFor(&u, cand.Analysis.Config.Payload)
	if herr != nil {
		worstMetrics(batteryColumns, out)
		return nil
	}
	cells := int(math.Round(packVoltage(&u) / liPoCellV))
	if cells < 1 {
		cells = 1
	}
	pack := mission.Battery{Capacity: u.Battery, Cells: cells}
	draw := hover + cand.Power
	endurance, err := pack.Endurance(draw)
	if err != nil {
		worstMetrics(batteryColumns, out)
		return nil
	}
	// Sag fraction against the vendor-quoted nominal estimate, computed
	// from the endurance already integrated (SagPenalty would integrate
	// the discharge a second time).
	naive := pack.NominalEnergy().Joules() / draw.Watts()
	sag := 0.0
	if naive > 0 {
		sag = math.Max(0, 1-endurance.Seconds()/naive)
	}
	out[0] = endurance.Seconds()
	out[1] = sag
	out[2] = draw.Watts()
	return nil
}

// --- mission.thermal ---------------------------------------------------

// thermalEval is the cheap analytic objective: the heatsink mass the
// platform's TDP demands (Fig. 12's 20×-TDP → 16.2×-mass relation),
// how much of the takeoff mass the payload eats, and the thrust
// headroom left above hover.
type thermalEval struct{ cat *catalog.Catalog }

func newThermalObjective(cat *catalog.Catalog, _ int64) Evaluator { return thermalEval{cat} }

var thermalColumns = []ObjectiveColumn{
	{Name: "heatsink_g"},
	{Name: "payload_frac"},
	{Name: "thrust_margin", Maximize: true},
}

func (thermalEval) Name() string               { return "mission.thermal" }
func (thermalEval) Seed() int64                { return 0 }
func (thermalEval) Columns() []ObjectiveColumn { return thermalColumns }

func (e thermalEval) Evaluate(_ context.Context, cand *Candidate, _ int64, out []float64) error {
	u, err := e.cat.UAV(cand.Selection.UAV)
	if err != nil {
		return err
	}
	comp, err := e.cat.Compute(cand.Selection.Compute)
	if err != nil {
		return err
	}
	var heatsink units.Mass
	if comp.NeedsHeatsink {
		heatsink = e.cat.Heatsink.HeatsinkMass(comp.TDP)
	}
	payload := cand.Analysis.Config.Payload
	takeoff := u.Frame.TakeoffMass(payload)
	out[0] = heatsink.Grams()
	if takeoff > 0 {
		out[1] = float64(payload) / float64(takeoff)
	} else {
		out[1] = posInf
	}
	// Thrust-to-weight of 1 is bare hover; the margin above it is the
	// maneuvering authority the payload left on the table.
	out[2] = u.Frame.ThrustToWeight(payload) - 1
	return nil
}

// --- mission.redundancy ------------------------------------------------

// redundancyEval prices §VI-C's fault-tolerance scenario: triplicate
// the compute module (mass ×3, a voter latency per decision), re-run
// the F-1 analysis on the degraded configuration, and score the safe
// velocity the TMR system retains against the reliability it buys.
type redundancyEval struct{ cat *catalog.Catalog }

func newRedundancyObjective(cat *catalog.Catalog, _ int64) Evaluator { return redundancyEval{cat} }

var redundancyColumns = []ObjectiveColumn{
	{Name: "tmr_velocity_mps", Maximize: true},
	{Name: "reliability", Maximize: true},
	{Name: "extra_mass_g"},
}

func (redundancyEval) Name() string               { return "mission.redundancy" }
func (redundancyEval) Seed() int64                { return 0 }
func (redundancyEval) Columns() []ObjectiveColumn { return redundancyColumns }

func (e redundancyEval) Evaluate(_ context.Context, cand *Candidate, _ int64, out []float64) error {
	comp, err := e.cat.Compute(cand.Selection.Compute)
	if err != nil {
		return err
	}
	arr := redundancy.Arrangement{
		Scheme:       redundancy.TMR,
		ModuleMass:   comp.TotalMass(e.cat.Heatsink),
		ModuleRate:   cand.Analysis.Config.ComputeRate,
		ModuleTDP:    comp.TDP,
		VoterLatency: units.Seconds(voterLatencyS),
	}
	if arr.Validate() != nil {
		worstMetrics(redundancyColumns, out)
		return nil
	}
	// The two extra replicas ride as payload and the voter stretches
	// every decision; the F-1 model prices both into safe velocity.
	cfg := cand.Analysis.Config
	cfg.Payload += units.Mass(2 * float64(arr.ModuleMass))
	cfg.ComputeRate = arr.EffectiveRate()
	an, err := core.Analyze(cfg)
	if err != nil || an.SafeVelocity <= 0 {
		worstMetrics(redundancyColumns, out)
		return nil
	}
	// Per-module mission survival over the TMR-velocity route time,
	// then majority-vote masking.
	tMission := missionRouteM / an.SafeVelocity.MetersPerSecond()
	pModule := math.Exp(-moduleFailRate * tMission)
	rel, err := arr.MissionReliability(pModule)
	if err != nil {
		worstMetrics(redundancyColumns, out)
		return nil
	}
	out[0] = an.SafeVelocity.MetersPerSecond()
	out[1] = rel
	out[2] = (arr.TotalMass() - arr.ModuleMass).Grams()
	return nil
}

// --- mission.flightsim -------------------------------------------------

// flightsimEval replays §IV's approach-and-stop protocol in the 1-D
// simulator that contains exactly the physics the F-1 model ignores
// (drag, actuation lag, brake derate, sampling phase): the success rate
// at the model's own safe velocity is how much of the analytic
// guarantee survives contact with dynamics.
type flightsimEval struct {
	cat  *catalog.Catalog
	seed int64
}

func newFlightsimObjective(cat *catalog.Catalog, seed int64) Evaluator {
	if seed == 0 {
		seed = 1
	}
	return flightsimEval{cat: cat, seed: seed}
}

var flightsimColumns = []ObjectiveColumn{
	{Name: "success_rate", Maximize: true},
	{Name: "stop_margin_m", Maximize: true},
}

func (e flightsimEval) Name() string             { return "mission.flightsim" }
func (e flightsimEval) Seed() int64              { return e.seed }
func (flightsimEval) Columns() []ObjectiveColumn { return flightsimColumns }

func (e flightsimEval) Evaluate(ctx context.Context, cand *Candidate, seed int64, out []float64) error {
	u, err := e.cat.UAV(cand.Selection.UAV)
	if err != nil {
		return err
	}
	an := &cand.Analysis
	if an.SafeVelocity <= 0 || an.Action <= 0 || an.Config.SensorRange <= 0 || an.AMax <= 0 {
		worstMetrics(flightsimColumns, out)
		return nil
	}
	frameM := u.Frame.FrameSize.Meters()
	v := flightsim.Vehicle{
		Mass:     u.Frame.TakeoffMass(an.Config.Payload),
		MaxAccel: an.AMax,
		// Frontal area ≈ diagonal²/8 — a coarse bluff-body estimate
		// that scales drag with the airframe.
		Drag:         physics.Drag{Cd: 1.0, Area: frameM * frameM / 8},
		ActuationLag: units.Milliseconds(30),
		BrakeDerate:  0.9,
	}
	s := flightsim.Scenario{
		// The paper flies a 3 m obstacle offset; clamp inside the
		// sensor range so short-range sensors stay winnable.
		ObstacleDistance: units.Meters(math.Min(3, an.Config.SensorRange.Meters())),
		SensorRange:      an.Config.SensorRange,
		DecisionRate:     an.Action,
		TargetVelocity:   an.SafeVelocity,
		Timestep:         units.Milliseconds(2),
	}
	trials, infractions, err := flightsim.TrialsContext(ctx, v, s, flightsimTrials, seed)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		worstMetrics(flightsimColumns, out)
		return nil
	}
	minMargin := posInf
	for i := range trials {
		if m := trials[i].StopMargin.Meters(); m < minMargin {
			minMargin = m
		}
	}
	out[0] = 1 - float64(infractions)/float64(len(trials))
	out[1] = minMargin
	return nil
}

// --- mission.stochastic ------------------------------------------------

// stochasticEval pushes the candidate's three-stage pipeline through
// the jittered flow-shop simulator: the worst observed output interval
// — not the mean — is what a safety argument must assume (Eq. 4 with
// the effective action rate), and the p99 latency is the staleness tail
// the controller sees.
type stochasticEval struct {
	seed int64
}

func newStochasticObjective(_ *catalog.Catalog, seed int64) Evaluator {
	if seed == 0 {
		seed = 1
	}
	return stochasticEval{seed: seed}
}

var stochasticColumns = []ObjectiveColumn{
	{Name: "eff_rate_hz", Maximize: true},
	{Name: "p99_latency_ms"},
	{Name: "mean_rate_hz", Maximize: true},
}

func (e stochasticEval) Name() string             { return "mission.stochastic" }
func (e stochasticEval) Seed() int64              { return e.seed }
func (stochasticEval) Columns() []ObjectiveColumn { return stochasticColumns }

func (e stochasticEval) Evaluate(ctx context.Context, cand *Candidate, seed int64, out []float64) error {
	cfg := &cand.Analysis.Config
	for _, rate := range []units.Frequency{cfg.SensorRate, cfg.ComputeRate, cfg.ControlRate} {
		if rate <= 0 || math.IsInf(rate.Hertz(), 1) {
			worstMetrics(stochasticColumns, out)
			return nil
		}
	}
	stages := []pipeline.JitterStage{
		{Stage: pipeline.StageHz("sensor", cfg.SensorRate), Jitter: sensorJitter},
		{Stage: pipeline.StageHz("compute", cfg.ComputeRate), Jitter: computeJitter},
		{Stage: pipeline.StageHz("control", cfg.ControlRate), Jitter: controlJitter},
	}
	res, err := pipeline.SimulateJitterContext(ctx, stages, jitterSamples, seed)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		worstMetrics(stochasticColumns, out)
		return nil
	}
	out[0] = res.EffectiveActionRate().Hertz()
	out[1] = res.P99Latency.Milliseconds()
	out[2] = res.MeanThroughput.Hertz()
	return nil
}
