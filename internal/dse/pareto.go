package dse

import (
	"fmt"
	"math"
	"sort"
)

// ParetoFront returns the candidates not dominated under the given
// objectives (all maximized). A candidate dominates another when it is
// at least as good on every objective and strictly better on one.
// Duplicates — candidates equal on every objective — do not dominate
// each other, so all of them stay on the front. A candidate with a NaN
// score is incomparable: it neither dominates nor is dominated, so it
// always stays on the front. Result order follows the input.
//
// The algorithm is chosen by objective count: one objective is the
// argmax set (O(n)); two objectives use a sort-based skyline sweep
// (O(n log n)); three or more use a sort-filter block-nested-loop scan
// whose window holds only mutually non-dominated candidates, with
// early termination inside each dominance test.
func ParetoFront(cands []Candidate, objs ...Objective) ([]Candidate, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("dse: Pareto front needs at least one objective")
	}
	if len(cands) == 0 {
		return nil, nil
	}
	// Score every candidate exactly once: objectives never re-run
	// during the sort or the dominance tests.
	scores := make([]float64, len(cands)*len(objs))
	for i, c := range cands {
		row := scores[i*len(objs) : (i+1)*len(objs)]
		for j, o := range objs {
			row[j] = o(c)
		}
	}
	// NaN-scored candidates are incomparable — always on the front —
	// and must not enter the sorted scans, whose comparators assume a
	// total order.
	keep, comparable := splitNaN(scores, len(objs))
	switch len(objs) {
	case 1:
		keep = append(keep, argmaxSet(scores, comparable)...)
	case 2:
		keep = append(keep, skyline2(scores, comparable)...)
	default:
		keep = append(keep, skylineBNL(scores, len(objs), comparable)...)
	}
	sort.Ints(keep)
	out := make([]Candidate, len(keep))
	for i, idx := range keep {
		out[i] = cands[idx]
	}
	return out, nil
}

// splitNaN partitions the candidate indices: those carrying any NaN
// score (returned directly — always front members) and the comparable
// rest (fed to the scans). The common all-finite case allocates
// nothing for the NaN side.
func splitNaN(scores []float64, k int) (nan, comparable []int) {
	n := len(scores) / k
	comparable = make([]int, 0, n)
	for i := 0; i < n; i++ {
		hasNaN := false
		for _, s := range scores[i*k : (i+1)*k] {
			if math.IsNaN(s) {
				hasNaN = true
				break
			}
		}
		if hasNaN {
			nan = append(nan, i)
		} else {
			comparable = append(comparable, i)
		}
	}
	return nan, comparable
}

// argmaxSet is the single-objective front: every candidate achieving
// the maximum score.
func argmaxSet(scores []float64, idx []int) []int {
	if len(idx) == 0 {
		return nil
	}
	best := scores[idx[0]]
	for _, i := range idx[1:] {
		if scores[i] > best {
			best = scores[i]
		}
	}
	var keep []int
	for _, i := range idx {
		if scores[i] == best {
			keep = append(keep, i)
		}
	}
	return keep
}

// skyline2 is the classic two-objective skyline sweep: sort by the
// first objective descending (second descending on ties), then a
// single pass keeps a point iff no already-seen point dominates it.
// Dominators always precede their victims in this order, so tracking
// two running maxima suffices: the best second objective among points
// with a strictly larger first objective, and the head of the current
// equal-first-objective run.
func skyline2(scores []float64, idx []int) []int {
	if len(idx) == 0 {
		return nil
	}
	order := make([]int, len(idx))
	copy(order, idx)
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		xa, xb := scores[2*ia], scores[2*ib]
		if xa != xb {
			return xa > xb
		}
		ya, yb := scores[2*ia+1], scores[2*ib+1]
		if ya != yb {
			return ya > yb
		}
		return ia < ib // stabilize for deterministic output
	})
	var keep []int
	// Best y among points with strictly larger x. A boolean tracks the
	// unset state: a -Inf sentinel would collide with legitimate -Inf
	// scores under the >= test and drop undominated points.
	maxYStrict, haveStrict := 0.0, false
	runX := scores[2*order[0]]
	runHeadY := scores[2*order[0]+1]
	for _, idx := range order {
		x, y := scores[2*idx], scores[2*idx+1]
		if x != runX {
			// Entering a new (smaller) x: everything in the finished
			// run has strictly larger x than all later points.
			if !haveStrict || runHeadY > maxYStrict {
				maxYStrict, haveStrict = runHeadY, true
			}
			runX, runHeadY = x, y
		}
		// Dominated either by a strictly-larger-x point with y >= ours,
		// or by an equal-x point with strictly larger y (the run head).
		if (haveStrict && maxYStrict >= y) || runHeadY > y {
			continue
		}
		keep = append(keep, idx)
	}
	return keep
}

// skylineBNL is the k >= 3 front: candidates are visited in descending
// score-sum order (when sums are finite, a dominator always has a
// strictly larger sum, so window members are final), and each candidate
// is tested against the window of current front members only. The
// window stays small in practice — it holds mutually non-dominated
// points — giving near-linear behavior on correlated objectives; the
// two-way test keeps the scan correct even when infinite scores break
// the sum ordering.
func skylineBNL(scores []float64, k int, idx []int) []int {
	order := make([]int, len(idx))
	copy(order, idx)
	sums := make([]float64, len(scores)/k)
	for _, i := range idx {
		s := 0.0
		for _, v := range scores[i*k : (i+1)*k] {
			s += v
		}
		sums[i] = s
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if sums[ia] != sums[ib] {
			return sums[ia] > sums[ib]
		}
		return ia < ib
	})
	var window []int
	for _, idx := range order {
		row := scores[idx*k : (idx+1)*k]
		dominated := false
		for w := 0; w < len(window); w++ {
			wrow := scores[window[w]*k : window[w]*k+k]
			if dominates(wrow, row) {
				dominated = true
				break
			}
			// Only possible when the sum ordering is broken by
			// infinities, but required for correctness then.
			if dominates(row, wrow) {
				window[w] = window[len(window)-1]
				window = window[:len(window)-1]
				w--
			}
		}
		if !dominated {
			window = append(window, idx)
		}
	}
	return window
}

// dominates reports whether score vector a dominates b: at least as
// good everywhere, strictly better somewhere. Vectors carrying a NaN
// are incomparable — never dominating, never dominated. It terminates
// at the first objective where a falls behind.
func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] < b[i] || math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}
