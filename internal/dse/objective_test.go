package dse

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

func TestNewObjectiveUnknownListsRegistry(t *testing.T) {
	cat := catalog.Default()
	_, err := NewObjective("warp", cat, 1)
	if err == nil {
		t.Fatal("unknown objective accepted")
	}
	for _, name := range ObjectiveNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestObjectiveColumnsWellFormed(t *testing.T) {
	cat := catalog.Default()
	for _, name := range ObjectiveNames() {
		ev, err := NewObjective(name, cat, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ev.Name() != name {
			t.Errorf("%s: Name() = %q", name, ev.Name())
		}
		cols := ev.Columns()
		if len(cols) == 0 {
			t.Fatalf("%s: no columns", name)
		}
		seen := map[string]bool{}
		for _, c := range cols {
			if c.Name == "" || seen[c.Name] {
				t.Errorf("%s: empty or duplicate column %q", name, c.Name)
			}
			seen[c.Name] = true
		}
	}
}

// TestObjectiveParallelMatchesSerial is the determinism hammer for the
// evaluator seam: for every registered objective, a parallel scored
// exploration (with and without the memo cache, across worker counts)
// must reproduce the serial slate element for element — including the
// Metrics columns, whose Monte-Carlo streams must not depend on
// scheduling. Run under -race this also exercises the evaluators'
// concurrent-safety contract.
func TestObjectiveParallelMatchesSerial(t *testing.T) {
	cat := catalog.Synthetic(3, 4, 4)
	space := synthSpace(cat)
	for _, name := range ObjectiveNames() {
		t.Run(name, func(t *testing.T) {
			ev, err := NewObjective(name, cat, 7)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := Explorer{Catalog: cat, Space: space, Workers: 1, Objective: ev}.Enumerate()
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != 3*4*4 {
				t.Fatalf("serial explored %d candidates, want %d", len(serial), 3*4*4)
			}
			for _, c := range serial {
				if len(c.Metrics) != len(ev.Columns()) {
					t.Fatalf("%s: %d metric columns, want %d", c.Name(), len(c.Metrics), len(ev.Columns()))
				}
			}
			for _, workers := range []int{2, 4, 8} {
				for _, cache := range []*core.Cache{core.CacheOff(), core.NewCache()} {
					par, err := Explorer{Catalog: cat, Space: space, Workers: workers, Objective: ev, Cache: cache}.Enumerate()
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					requireEqualCandidates(t, serial, par)
				}
			}
		})
	}
}

// TestObjectiveCacheKeyedBySeedAndName verifies the score cache does
// not bleed across objectives or seeds: the same space explored under
// different seeds through one shared cache yields different
// Monte-Carlo metrics, and re-running with the original seed still
// reproduces the original slate.
func TestObjectiveCacheKeyedBySeedAndName(t *testing.T) {
	cat := catalog.Synthetic(2, 3, 3)
	space := synthSpace(cat)
	cache := core.NewCache()
	explore := func(seed int64) []Candidate {
		t.Helper()
		ev, err := NewObjective("mission.stochastic", cat, seed)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := Explorer{Catalog: cat, Space: space, Objective: ev, Cache: cache}.Enumerate()
		if err != nil {
			t.Fatal(err)
		}
		return cands
	}
	a := explore(7)
	b := explore(8)
	diff := false
	for i := range a {
		for j := range a[i].Metrics {
			if a[i].Metrics[j] != b[i].Metrics[j] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("seed 7 and seed 8 produced identical Monte-Carlo metrics — seed missing from cache key?")
	}
	requireEqualCandidates(t, a, explore(7))
}
