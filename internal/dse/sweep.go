package dse

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/units"
)

// Sweep varies one knob of a configuration over a range and records how
// the F-1 outputs respond — the programmatic equivalent of dragging a
// Skyline slider, and the building block for custom characterization
// studies.

// Knob identifies a sweepable configuration parameter.
type Knob int

const (
	// KnobPayload sweeps the payload mass (grams).
	KnobPayload Knob = iota
	// KnobSensorRange sweeps the sensing distance (meters).
	KnobSensorRange
	// KnobSensorRate sweeps the sensor frame rate (Hz).
	KnobSensorRate
	// KnobComputeRate sweeps the compute throughput (Hz).
	KnobComputeRate
)

// String implements fmt.Stringer.
func (k Knob) String() string {
	switch k {
	case KnobPayload:
		return "payload (g)"
	case KnobSensorRange:
		return "sensor range (m)"
	case KnobSensorRate:
		return "sensor rate (Hz)"
	case KnobComputeRate:
		return "compute rate (Hz)"
	default:
		return fmt.Sprintf("Knob(%d)", int(k))
	}
}

// SweepPoint is one sample of a sweep.
type SweepPoint struct {
	// Value is the knob setting (in the knob's natural unit).
	Value float64
	// Analysis is the full F-1 result at that setting.
	Analysis core.Analysis
}

// SweepResult is a completed sweep.
type SweepResult struct {
	Knob   Knob
	Points []SweepPoint
}

// Sweep evaluates the configuration with the knob set to n values
// spaced linearly (or geometrically when logSpace) between lo and hi.
func Sweep(cfg core.Config, knob Knob, lo, hi float64, n int, logSpace bool) (SweepResult, error) {
	if n < 2 {
		return SweepResult{}, fmt.Errorf("dse: sweep needs ≥2 points, got %d", n)
	}
	if hi <= lo {
		return SweepResult{}, fmt.Errorf("dse: sweep range [%v,%v] is empty", lo, hi)
	}
	if logSpace && lo <= 0 {
		return SweepResult{}, fmt.Errorf("dse: log sweep needs positive lower bound, got %v", lo)
	}
	res := SweepResult{Knob: knob, Points: make([]SweepPoint, 0, n)}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		var v float64
		if logSpace {
			v = lo * math.Pow(hi/lo, t)
		} else {
			v = lo + t*(hi-lo)
		}
		c := cfg
		switch knob {
		case KnobPayload:
			c.Payload = units.Grams(v)
		case KnobSensorRange:
			c.SensorRange = units.Meters(v)
		case KnobSensorRate:
			c.SensorRate = units.Hertz(v)
		case KnobComputeRate:
			c.ComputeRate = units.Hertz(v)
		default:
			return SweepResult{}, fmt.Errorf("dse: unknown knob %v", knob)
		}
		an, err := core.Analyze(c)
		if err != nil {
			return SweepResult{}, fmt.Errorf("dse: sweep %v at %v: %w", knob, v, err)
		}
		res.Points = append(res.Points, SweepPoint{Value: v, Analysis: an})
	}
	return res, nil
}

// Velocities extracts the (knob value, safe velocity) series for
// plotting.
func (r SweepResult) Velocities() (xs, ys []float64) {
	xs = make([]float64, len(r.Points))
	ys = make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i] = p.Value
		ys[i] = p.Analysis.SafeVelocity.MetersPerSecond()
	}
	return xs, ys
}

// BoundTransitions returns the knob values at which the bound
// classification changes — where a design crosses from compute-bound to
// physics-bound territory as the knob moves.
func (r SweepResult) BoundTransitions() []SweepPoint {
	var out []SweepPoint
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Analysis.Bound != r.Points[i-1].Analysis.Bound {
			out = append(out, r.Points[i])
		}
	}
	return out
}
