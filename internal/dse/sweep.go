package dse

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/units"
)

// Sweep varies one knob of a configuration over a range and records how
// the F-1 outputs respond — the programmatic equivalent of dragging a
// Skyline slider, and the building block for custom characterization
// studies. Large sweeps are evaluated in parallel chunks; the points
// land in a preallocated slice at their own indices, so the result is
// identical for every worker count.

// Knob identifies a sweepable configuration parameter.
type Knob int

const (
	// KnobPayload sweeps the payload mass (grams).
	KnobPayload Knob = iota
	// KnobSensorRange sweeps the sensing distance (meters).
	KnobSensorRange
	// KnobSensorRate sweeps the sensor frame rate (Hz).
	KnobSensorRate
	// KnobComputeRate sweeps the compute throughput (Hz).
	KnobComputeRate
)

// String implements fmt.Stringer.
func (k Knob) String() string {
	switch k {
	case KnobPayload:
		return "payload (g)"
	case KnobSensorRange:
		return "sensor range (m)"
	case KnobSensorRate:
		return "sensor rate (Hz)"
	case KnobComputeRate:
		return "compute rate (Hz)"
	default:
		return fmt.Sprintf("Knob(%d)", int(k))
	}
}

// apply returns cfg with the knob set to v.
func (k Knob) apply(cfg core.Config, v float64) core.Config {
	switch k {
	case KnobPayload:
		cfg.Payload = units.Grams(v)
	case KnobSensorRange:
		cfg.SensorRange = units.Meters(v)
	case KnobSensorRate:
		cfg.SensorRate = units.Hertz(v)
	case KnobComputeRate:
		cfg.ComputeRate = units.Hertz(v)
	}
	return cfg
}

// valid reports whether the knob is one of the defined constants.
func (k Knob) valid() bool { return k >= KnobPayload && k <= KnobComputeRate }

// SweepPoint is one sample of a sweep.
type SweepPoint struct {
	// Value is the knob setting (in the knob's natural unit).
	Value float64
	// Analysis is the full F-1 result at that setting.
	Analysis core.Analysis
}

// SweepResult is a completed sweep.
type SweepResult struct {
	Knob   Knob
	Points []SweepPoint
}

// sweepSerialThreshold is the point count below which goroutine setup
// costs more than it saves.
const sweepSerialThreshold = 64

// sweepEval is a sweep's factored evaluation state: the base
// configuration's model partial and the three pipeline stages,
// precomputed once per sweep so each point recomputes only what the
// swept knob actually invalidates. A rate knob replaces one stage; the
// range knob re-derives the partial's knee/roof while reusing its
// a_max lookup (a calibrated-table segment search on real catalogs).
// The payload knob invalidates the a_max lookup itself, so payload
// sweeps fall back to the full core.Analyze. Values are copied per
// point (no shared mutation), so parallel sweep workers can share one
// base.
type sweepEval struct {
	base                     core.ModelPartial
	name                     string
	sensor, compute, control core.Stage
}

// newSweepEval factors cfg once.
func newSweepEval(cfg core.Config) sweepEval {
	return sweepEval{
		base:    core.PrecomputeModel(cfg),
		name:    cfg.Name,
		sensor:  core.PrecomputeStage(cfg.SensorRate),
		compute: core.PrecomputeStage(cfg.ComputeRate),
		control: core.PrecomputeStage(cfg.ControlRate),
	}
}

// with returns a copy with knob k set to v, recomputing only the
// invalidated part. KnobPayload is the caller's responsibility to
// avoid (it cannot reuse the base partial).
func (e sweepEval) with(k Knob, v float64) sweepEval {
	switch k {
	case KnobSensorRange:
		e.base = e.base.WithRange(units.Meters(v))
	case KnobSensorRate:
		e.sensor = core.PrecomputeStage(units.Hertz(v))
	case KnobComputeRate:
		e.compute = core.PrecomputeStage(units.Hertz(v))
	}
	return e
}

// analyze combines the current partial and stages — bit-identical to
// core.Analyze of the equivalently knob-applied configuration.
func (e *sweepEval) analyze() (core.Analysis, error) {
	return core.AnalyzeWithPartial(&e.base, e.name, e.sensor, e.compute, e.control)
}

// sampleAt returns the i-th of n samples between lo and hi, linearly or
// geometrically spaced.
func sampleAt(lo, hi float64, i, n int, logSpace bool) float64 {
	t := float64(i) / float64(n-1)
	if logSpace {
		return lo * math.Pow(hi/lo, t)
	}
	return lo + t*(hi-lo)
}

// Sweep evaluates the configuration with the knob set to n values
// spaced linearly (or geometrically when logSpace) between lo and hi —
// SweepContext without a cancellation context, on all available cores.
//
//reprolint:ctxshim documented no-context convenience wrapper; request paths use SweepContext
func Sweep(cfg core.Config, knob Knob, lo, hi float64, n int, logSpace bool) (SweepResult, error) {
	return SweepContext(context.Background(), cfg, knob, lo, hi, n, logSpace, 0)
}

// SweepContext evaluates the configuration with the knob set to n
// values spaced linearly (or geometrically when logSpace) between lo
// and hi. Large sweeps run across workers cores (0 = GOMAXPROCS — a
// server passes its per-request cap); the output is deterministic
// regardless. Cancelling ctx — a disconnected /sweep.svg client —
// stops the evaluation between points and returns ctx's error.
func SweepContext(ctx context.Context, cfg core.Config, knob Knob, lo, hi float64, n int, logSpace bool, workers int) (SweepResult, error) {
	if n < 2 {
		return SweepResult{}, fmt.Errorf("dse: sweep needs ≥2 points, got %d", n)
	}
	if hi <= lo {
		return SweepResult{}, fmt.Errorf("dse: sweep range [%v,%v] is empty", lo, hi)
	}
	if logSpace && lo <= 0 {
		return SweepResult{}, fmt.Errorf("dse: log sweep needs positive lower bound, got %v", lo)
	}
	if !knob.valid() {
		return SweepResult{}, fmt.Errorf("dse: unknown knob %v", knob)
	}
	points := make([]SweepPoint, n)
	var eval func(i int) error
	if knob == KnobPayload {
		// A payload sweep invalidates the a_max lookup itself — nothing
		// model-side survives between points; run the full analysis.
		eval = func(i int) error {
			v := sampleAt(lo, hi, i, n, logSpace)
			an, err := core.Analyze(knob.apply(cfg, v))
			if err != nil {
				return fmt.Errorf("dse: sweep %v at %v: %w", knob, v, err)
			}
			points[i] = SweepPoint{Value: v, Analysis: an}
			return nil
		}
	} else {
		// Rate and range knobs leave the a_max lookup valid: factor the
		// configuration once and recompute only the swept part per
		// point (bit-identical to the full analysis).
		pe := newSweepEval(cfg)
		eval = func(i int) error {
			v := sampleAt(lo, hi, i, n, logSpace)
			e := pe.with(knob, v)
			an, err := e.analyze()
			if err != nil {
				return fmt.Errorf("dse: sweep %v at %v: %w", knob, v, err)
			}
			points[i] = SweepPoint{Value: v, Analysis: an}
			return nil
		}
	}
	if err := forEachParallel(ctx, n, workers, eval); err != nil {
		return SweepResult{}, err
	}
	return SweepResult{Knob: knob, Points: points}, nil
}

// forEachParallel runs eval(0..n-1), serially for small n and across
// the package's work-stealing scheduler otherwise (workers <= 0 picks
// GOMAXPROCS). Workers write only their own indices, so results are
// position-stable and identical for every worker count; skewed
// workloads — some indices far slower than others — rebalance through
// steal-half splitting instead of stalling a fixed chunk. The first
// error aborts the remaining work (the result is discarded wholesale
// anyway), and cancelling ctx stops every worker between evaluations;
// the returned error is the lowest-indexed recorded failure, or ctx's
// error when nothing else failed first. A panicking evaluation —
// corrupt model data, an armed fault — is recovered into that
// position's error instead of unwinding a pool goroutine and killing
// the process.
func forEachParallel(ctx context.Context, n, workers int, eval func(i int) error) error {
	done := ctx.Done()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	safeEval := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("dse: panic evaluating point %d: %v", i, r)
			}
		}()
		if err := faultinject.Fire(faultinject.SiteDSEChunk); err != nil {
			return fmt.Errorf("dse: point %d: %w", i, err)
		}
		return eval(i)
	}
	if n < sweepSerialThreshold || workers == 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			if err := safeEval(i); err != nil {
				return err
			}
		}
		return nil
	}
	var mu sync.Mutex
	firstIdx, firstErr := n, error(nil)
	stealRun(ctx, n, workers, stealGrain(n, workers), func(_ int, g span) bool {
		for i := g.start; i < g.end; i++ {
			select {
			case <-done:
				return false
			default:
			}
			if err := safeEval(i); err != nil {
				mu.Lock()
				if i < firstIdx {
					firstIdx, firstErr = i, err
				}
				mu.Unlock()
				return false // abort the remaining work
			}
		}
		return true
	})
	// stealRun has joined every worker, so the error record is settled.
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Velocities extracts the (knob value, safe velocity) series for
// plotting.
func (r SweepResult) Velocities() (xs, ys []float64) {
	xs = make([]float64, len(r.Points))
	ys = make([]float64, len(r.Points))
	for i, p := range r.Points {
		xs[i] = p.Value
		ys[i] = p.Analysis.SafeVelocity.MetersPerSecond()
	}
	return xs, ys
}

// BoundTransitions returns the knob values at which the bound
// classification changes — where a design crosses from compute-bound to
// physics-bound territory as the knob moves.
func (r SweepResult) BoundTransitions() []SweepPoint {
	var out []SweepPoint
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Analysis.Bound != r.Points[i-1].Analysis.Bound {
			out = append(out, r.Points[i])
		}
	}
	return out
}

// GridResult is a completed two-knob sweep: Cells[yi][xi] is the
// analysis at (Xs[xi], Ys[yi]).
type GridResult struct {
	XKnob, YKnob Knob
	Xs, Ys       []float64
	Cells        [][]core.Analysis
}

// VelocityGrid extracts the safe-velocity field for heatmap rendering:
// out[yi][xi] is the safe velocity at (Xs[xi], Ys[yi]).
func (g GridResult) VelocityGrid() [][]float64 {
	out := make([][]float64, len(g.Cells))
	for yi, row := range g.Cells {
		vs := make([]float64, len(row))
		for xi := range row {
			vs[xi] = row[xi].SafeVelocity.MetersPerSecond()
		}
		out[yi] = vs
	}
	return out
}

// GridSweep evaluates the configuration over the (xKnob × yKnob) grid
// — GridSweepContext without a cancellation context, on all available
// cores.
//
//reprolint:ctxshim documented no-context convenience wrapper; request paths use GridSweepContext
func GridSweep(cfg core.Config, xKnob Knob, xLo, xHi float64, nx int, yKnob Knob, yLo, yHi float64, ny int) (GridResult, error) {
	return GridSweepContext(context.Background(), cfg, xKnob, xLo, xHi, nx, yKnob, yLo, yHi, ny, 0)
}

// GridSweepContext evaluates the configuration over the (xKnob ×
// yKnob) grid: nx samples of xKnob between xLo and xHi crossed with ny
// samples of yKnob between yLo and yHi, linearly spaced. The nx·ny
// analyses run in parallel chunks across workers cores (0 = GOMAXPROCS
// — a server passes its per-request cap) with deterministic placement
// — the characterization heatmap behind two-axis design studies.
// Cancelling ctx — a disconnected /grid.svg client — stops the workers
// between cells instead of finishing the grid.
func GridSweepContext(ctx context.Context, cfg core.Config, xKnob Knob, xLo, xHi float64, nx int, yKnob Knob, yLo, yHi float64, ny int, workers int) (GridResult, error) {
	if nx < 2 || ny < 2 {
		return GridResult{}, fmt.Errorf("dse: grid sweep needs ≥2 points per axis, got %d×%d", nx, ny)
	}
	if xHi <= xLo || yHi <= yLo {
		return GridResult{}, fmt.Errorf("dse: grid sweep range [%v,%v]×[%v,%v] is empty", xLo, xHi, yLo, yHi)
	}
	if !xKnob.valid() || !yKnob.valid() {
		return GridResult{}, fmt.Errorf("dse: unknown knob in grid sweep (%v, %v)", xKnob, yKnob)
	}
	if xKnob == yKnob {
		return GridResult{}, fmt.Errorf("dse: grid sweep axes must differ, got %v twice", xKnob)
	}
	res := GridResult{XKnob: xKnob, YKnob: yKnob}
	res.Xs = make([]float64, nx)
	for i := range res.Xs {
		res.Xs[i] = sampleAt(xLo, xHi, i, nx, false)
	}
	res.Ys = make([]float64, ny)
	for i := range res.Ys {
		res.Ys[i] = sampleAt(yLo, yHi, i, ny, false)
	}
	res.Cells = make([][]core.Analysis, ny)
	cells := make([]core.Analysis, nx*ny)
	for yi := range res.Cells {
		res.Cells[yi] = cells[yi*nx : (yi+1)*nx]
	}
	var eval func(i int) error
	if xKnob == KnobPayload || yKnob == KnobPayload {
		// A payload axis invalidates the a_max lookup per cell; run the
		// full analysis.
		eval = func(i int) error {
			xi, yi := i%nx, i/nx
			c := yKnob.apply(xKnob.apply(cfg, res.Xs[xi]), res.Ys[yi])
			an, err := core.Analyze(c)
			if err != nil {
				return fmt.Errorf("dse: grid sweep at (%v=%v, %v=%v): %w", xKnob, res.Xs[xi], yKnob, res.Ys[yi], err)
			}
			cells[i] = an
			return nil
		}
	} else {
		// Both axes are rate/range knobs: factor once, apply the x knob
		// once per distinct column value (not once per cell), and
		// recompute per cell only the y-knob part — same x-then-y
		// application order as the direct path.
		pe := newSweepEval(cfg)
		xEvals := make([]sweepEval, nx)
		for xi := range xEvals {
			xEvals[xi] = pe.with(xKnob, res.Xs[xi])
		}
		eval = func(i int) error {
			xi, yi := i%nx, i/nx
			e := xEvals[xi].with(yKnob, res.Ys[yi])
			an, err := e.analyze()
			if err != nil {
				return fmt.Errorf("dse: grid sweep at (%v=%v, %v=%v): %w", xKnob, res.Xs[xi], yKnob, res.Ys[yi], err)
			}
			cells[i] = an
			return nil
		}
	}
	if err := forEachParallel(ctx, nx*ny, workers, eval); err != nil {
		return GridResult{}, err
	}
	return res, nil
}
