package dse

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/catalog"
)

// scoredCandidates builds synthetic candidates whose objective values
// are taken from rows, via objectives that index a side table by name.
// This isolates the Pareto algorithms from the F-1 model.
func scoredCandidates(rows [][]float64) ([]Candidate, []Objective) {
	cands := make([]Candidate, len(rows))
	table := make(map[string][]float64, len(rows))
	k := 0
	for i, row := range rows {
		name := fmt.Sprintf("cand-%03d", i)
		cands[i].Analysis.Config.Name = name
		table[name] = row
		if len(row) > k {
			k = len(row)
		}
	}
	objs := make([]Objective, k)
	for j := range objs {
		j := j
		objs[j] = func(c Candidate) float64 { return table[c.Name()][j] }
	}
	return cands, objs
}

// bruteForceFront is the O(n²) reference implementation (the
// pre-rework algorithm).
func bruteForceFront(cands []Candidate, objs []Objective) []Candidate {
	scores := make([][]float64, len(cands))
	for i, c := range cands {
		scores[i] = make([]float64, len(objs))
		for j, o := range objs {
			scores[i][j] = o(c)
		}
	}
	var out []Candidate
	for i := range cands {
		dominated := false
		for j := range cands {
			if i != j && dominates(scores[j], scores[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, cands[i])
		}
	}
	return out
}

func requireSameFront(t *testing.T, want, got []Candidate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("front size: want %d (%v), got %d (%v)", len(want), names(want), len(got), names(got))
	}
	for i := range want {
		if want[i].Name() != got[i].Name() {
			t.Fatalf("front[%d]: want %s, got %s", i, want[i].Name(), got[i].Name())
		}
	}
}

func names(cands []Candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.Name()
	}
	return out
}

// lcg is a tiny deterministic generator so the randomized comparisons
// are reproducible.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64((*l)>>11) / float64(1<<53)
}

func TestParetoEmptyInput(t *testing.T) {
	front, err := ParetoFront(nil, MaxVelocity, MinPower)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != 0 {
		t.Fatalf("empty input produced %d front members", len(front))
	}
}

func TestParetoNoObjectives(t *testing.T) {
	if _, err := ParetoFront(nil); err == nil {
		t.Error("no objectives accepted")
	}
}

func TestPareto2DMatchesBruteForce(t *testing.T) {
	rng := lcg(42)
	for trial := 0; trial < 20; trial++ {
		n := 3 + trial*7
		rows := make([][]float64, n)
		for i := range rows {
			// Quantize so ties and duplicates occur naturally.
			rows[i] = []float64{math.Floor(rng.next() * 8), math.Floor(rng.next() * 8)}
		}
		cands, objs := scoredCandidates(rows)
		got, err := ParetoFront(cands, objs...)
		if err != nil {
			t.Fatal(err)
		}
		requireSameFront(t, bruteForceFront(cands, objs), got)
	}
}

func TestPareto3DMatchesBruteForce(t *testing.T) {
	rng := lcg(7)
	for trial := 0; trial < 20; trial++ {
		n := 3 + trial*5
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{
				math.Floor(rng.next() * 6),
				math.Floor(rng.next() * 6),
				math.Floor(rng.next() * 6),
			}
		}
		cands, objs := scoredCandidates(rows)
		got, err := ParetoFront(cands, objs...)
		if err != nil {
			t.Fatal(err)
		}
		requireSameFront(t, bruteForceFront(cands, objs), got)
	}
}

func TestParetoDuplicatesAllKept(t *testing.T) {
	// Candidates equal on every objective do not dominate each other:
	// the whole duplicate set survives.
	rows := [][]float64{{5, 5}, {5, 5}, {5, 5}, {3, 3}}
	cands, objs := scoredCandidates(rows)
	front, err := ParetoFront(cands, objs...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names(front), []string{"cand-000", "cand-001", "cand-002"}) {
		t.Fatalf("duplicate handling: got %v", names(front))
	}
}

func TestParetoTies(t *testing.T) {
	// Ties on one axis: (5,1) and (5,3) share x; (5,3) dominates (5,1).
	// (1,5) is incomparable to both.
	rows := [][]float64{{5, 1}, {5, 3}, {1, 5}}
	cands, objs := scoredCandidates(rows)
	front, err := ParetoFront(cands, objs...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names(front), []string{"cand-001", "cand-002"}) {
		t.Fatalf("tie handling: got %v", names(front))
	}
}

func TestParetoInputOrderPreserved(t *testing.T) {
	rows := [][]float64{{1, 9}, {9, 1}, {5, 5}, {0, 0}}
	cands, objs := scoredCandidates(rows)
	front, err := ParetoFront(cands, objs...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names(front), []string{"cand-000", "cand-001", "cand-002"}) {
		t.Fatalf("order: got %v", names(front))
	}
}

func TestParetoInfiniteScores(t *testing.T) {
	// Infinities break the sum ordering the k>=3 scan exploits; the
	// two-way window test must still produce the right front.
	rows := [][]float64{
		{math.Inf(1), 0, 0},
		{math.Inf(1), 1, 0},
		{0, 0, math.Inf(1)},
		{0, 0, 1},
	}
	cands, objs := scoredCandidates(rows)
	front, err := ParetoFront(cands, objs...)
	if err != nil {
		t.Fatal(err)
	}
	requireSameFront(t, bruteForceFront(cands, objs), front)
	if !reflect.DeepEqual(names(front), []string{"cand-001", "cand-002"}) {
		t.Fatalf("infinity handling: got %v", names(front))
	}
}

func TestPareto2DNegativeInfinity(t *testing.T) {
	// A candidate scoring -Inf on the second objective but strictly
	// best on the first is undominated and must stay on the front (a
	// -Inf sentinel in the sweep would swallow it).
	ninf := math.Inf(-1)
	for _, rows := range [][][]float64{
		{{9, ninf}, {1, 5}},
		{{1, 5}, {9, ninf}},
		{{9, ninf}, {9, ninf}, {1, 5}},
		{{ninf, ninf}, {1, 5}},
		{{9, ninf}, {10, 0}, {1, 5}},
	} {
		cands, objs := scoredCandidates(rows)
		got, err := ParetoFront(cands, objs...)
		if err != nil {
			t.Fatal(err)
		}
		requireSameFront(t, bruteForceFront(cands, objs), got)
	}
}

func TestParetoNaNScoresNeverDominated(t *testing.T) {
	// NaN compares false both ways, so a NaN-scored candidate is never
	// dominated: every path must keep it, including the single-objective
	// argmax set.
	nan := math.NaN()
	for _, rows := range [][][]float64{
		{{3}, {nan}, {7}, {7}},
		{{nan}, {nan}},
		{{3, 1}, {nan, 5}, {7, 2}},
		{{3, 1, 0}, {nan, 5, 1}, {7, 2, 2}},
	} {
		cands, objs := scoredCandidates(rows)
		got, err := ParetoFront(cands, objs...)
		if err != nil {
			t.Fatal(err)
		}
		requireSameFront(t, bruteForceFront(cands, objs), got)
	}
}

func TestParetoSingleObjectiveArgmaxSet(t *testing.T) {
	rows := [][]float64{{3}, {7}, {7}, {1}}
	cands, objs := scoredCandidates(rows)
	front, err := ParetoFront(cands, objs...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names(front), []string{"cand-001", "cand-002"}) {
		t.Fatalf("argmax set: got %v", names(front))
	}
}

func TestParetoRealCandidates2DMatchesBruteForce(t *testing.T) {
	// End-to-end on the synthetic catalog with the real objectives.
	cat := catalog.Synthetic(3, 8, 8)
	cands, err := Enumerate(cat, synthSpace(cat), Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	objs := []Objective{MaxVelocity, MinPower}
	got, err := ParetoFront(cands, objs...)
	if err != nil {
		t.Fatal(err)
	}
	requireSameFront(t, bruteForceFront(cands, objs), got)

	objs3 := []Objective{MaxVelocity, MinPower, MinPayload}
	got3, err := ParetoFront(cands, objs3...)
	if err != nil {
		t.Fatal(err)
	}
	requireSameFront(t, bruteForceFront(cands, objs3), got3)
}
