package dse

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
)

// TestStealRunCoversSpaceExactlyOnce drives the raw scheduler over many
// (n, workers, grain) shapes and asserts every index is processed
// exactly once — the invariant all determinism rests on — including
// shapes that force heavy stealing (grain 1, workers ≫ spans).
func TestStealRunCoversSpaceExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 5, 16} {
			for _, grain := range []int{1, 8, 512} {
				counts := make([]atomic.Int32, n)
				stealRun(context.Background(), n, workers, grain, func(_ int, g span) bool {
					for i := g.start; i < g.end; i++ {
						counts[i].Add(1)
					}
					return true
				})
				for i := range counts {
					if c := counts[i].Load(); c != 1 {
						t.Fatalf("n=%d workers=%d grain=%d: index %d processed %d times",
							n, workers, grain, i, c)
					}
				}
			}
		}
	}
}

// skewedExplorer builds an Explorer over a skewed synthetic space: the
// last UAV's cells cost ~hundreds of times the first's, so a static
// partition would leave most workers idle while one grinds the tail.
func skewedExplorer(workers, grain int) Explorer {
	cat := catalog.SyntheticSkewed(6, 8, 8, 150) // 384 candidates, heavy tail
	return Explorer{
		Catalog:   cat,
		Space:     synthSpace(cat),
		Workers:   workers,
		ChunkSize: grain,
		Cache:     core.CacheOff(), // every candidate pays its true cost
	}
}

// TestStealSkewedMatchesSerial is the determinism hammer: on a heavily
// skewed space — where workers rebalance constantly through steal-half
// splitting — the parallel stream must stay element-for-element
// identical to the serial scan for every worker count and grain size.
// Run under -race (CI does) it also hammers the deque/sink locking.
func TestStealSkewedMatchesSerial(t *testing.T) {
	serial, err := skewedExplorer(1, 0).Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 6*8*8 {
		t.Fatalf("serial explored %d candidates, want %d", len(serial), 6*8*8)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		for _, grain := range []int{0, 1, 7, 64} {
			e := skewedExplorer(workers, grain)
			par, err := e.Enumerate()
			if err != nil {
				t.Fatalf("workers=%d grain=%d: %v", workers, grain, err)
			}
			requireEqualCandidates(t, serial, par)
			// The streaming path merges through the ordered sink; it
			// must agree too, including under an early break.
			var got []Candidate
			for cand, err := range e.Candidates(context.Background()) {
				if err != nil {
					t.Fatalf("workers=%d grain=%d: %v", workers, grain, err)
				}
				got = append(got, cand)
				if len(got) == 100 {
					break
				}
			}
			requireEqualCandidates(t, serial[:len(got)], got)
		}
	}
}

// TestStealSweepSkewedDeterministic covers the forEachParallel side of
// the scheduler: a sweep whose per-point cost varies is evaluated
// position-stably for every worker count.
func TestStealSweepSkewedDeterministic(t *testing.T) {
	cat := catalog.SyntheticSkewed(4, 4, 4, 120)
	cfg, err := cat.BuildConfig(catalog.Selection{
		UAV:       cat.UAVNames()[3], // the expensive airframe
		Compute:   cat.ComputeNames()[0],
		Algorithm: cat.AlgorithmNames()[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := SweepContext(context.Background(), cfg, KnobPayload, 10, 900, 300, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 9} {
		got, err := SweepContext(context.Background(), cfg, KnobPayload, 10, 900, 300, false, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want.Points {
			if !reflect.DeepEqual(want.Points[i], got.Points[i]) {
				t.Fatalf("workers=%d: point %d diverges", workers, i)
			}
		}
	}
}

// TestForEachParallelLowestError: when several indices fail, the
// reported error is the lowest-indexed recorded failure, exactly as the
// fixed-chunk scheduler promised.
func TestForEachParallelLowestError(t *testing.T) {
	n := 500
	err := forEachParallel(context.Background(), n, 8, func(i int) error {
		if i%97 == 0 && i > 0 { // fails at 97, 194, ...
			return fmt.Errorf("eval %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error surfaced")
	}
	// Abort-on-first-error means not every failure is recorded, but the
	// reported one can never be preceded by an unreported recorded one;
	// with uniform costs the lowest failing index is reliably seen.
	var idx int
	if _, scanErr := fmt.Sscanf(err.Error(), "eval %d failed", &idx); scanErr != nil {
		t.Fatalf("unexpected error %q", err)
	}
	if idx%97 != 0 {
		t.Fatalf("reported index %d is not a failure site", idx)
	}
}

// TestStealCancellationNoLeaks is the steal-under-cancellation leak
// check: cancelling a skewed exploration mid-stream — workers blocked
// on the reorder buffer, thieves mid-steal — must wind every goroutine
// down and surface context.Canceled, round after round.
func TestStealCancellationNoLeaks(t *testing.T) {
	e := skewedExplorer(8, 4)
	baseline := runtime.NumGoroutine()
	for round := 0; round < 8; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var got []Candidate
		var sawErr error
		for cand, err := range e.Candidates(ctx) {
			if err != nil {
				sawErr = err
				break
			}
			got = append(got, cand)
			if len(got) == 2+7*round { // vary the cancellation point
				cancel()
			}
		}
		cancel()
		if sawErr == nil {
			t.Fatalf("round %d: cancelled exploration completed without error", round)
		}
		if !errors.Is(sawErr, context.Canceled) {
			t.Fatalf("round %d: error = %v, want context.Canceled", round, sawErr)
		}
	}
	if n := goroutineCount(t, baseline, 5*time.Second); n > baseline {
		t.Fatalf("goroutines after cancelled rounds: %d, baseline %d — scheduler leaked", n, baseline)
	}
}

// TestForEachParallelCancelNoLeaks covers the sweep path: cancellation
// mid-grid returns ctx's error and the pool's goroutines exit.
func TestForEachParallelCancelNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var evals atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		var err error
		go func() {
			defer wg.Done()
			err = forEachParallel(ctx, 10000, 8, func(i int) error {
				if evals.Add(1) == 50 {
					cancel()
				}
				return nil
			})
		}()
		wg.Wait()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: err = %v, want context.Canceled", round, err)
		}
	}
	if n := goroutineCount(t, baseline, 5*time.Second); n > baseline {
		t.Fatalf("goroutines after cancelled sweeps: %d, baseline %d", n, baseline)
	}
}
