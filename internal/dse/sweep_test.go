package dse

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

func pelicanDroNetConfig(t *testing.T) core.Config {
	t.Helper()
	cat := catalog.Default()
	cfg, err := cat.BuildConfig(catalog.Selection{
		UAV: catalog.UAVAscTecPelican, Compute: catalog.ComputeTX2, Algorithm: catalog.AlgoDroNet})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestSweepComputeRateFindsBoundTransition(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	res, err := Sweep(cfg, KnobComputeRate, 1, 200, 60, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 60 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Velocity is non-decreasing in compute rate.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Analysis.SafeVelocity < res.Points[i-1].Analysis.SafeVelocity {
			t.Fatalf("velocity decreased at %v Hz", res.Points[i].Value)
		}
	}
	// Somewhere between 1 and 200 Hz the design crosses compute-bound →
	// physics-bound (the knee is at 43 Hz).
	trans := res.BoundTransitions()
	if len(trans) == 0 {
		t.Fatal("no bound transition found")
	}
	v := trans[0].Value
	if v < 30 || v > 60 {
		t.Errorf("transition at %v Hz, want near the 43 Hz knee", v)
	}
}

func TestSweepPayloadMonotone(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	res, err := Sweep(cfg, KnobPayload, 80, 550, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := res.Velocities()
	if len(xs) != 40 || len(ys) != 40 {
		t.Fatal("series length wrong")
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+1e-9 {
			t.Fatalf("velocity increased with payload at %v g", xs[i])
		}
	}
}

func TestSweepSensorRangeMonotone(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	res, err := Sweep(cfg, KnobSensorRange, 1, 20, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	_, ys := res.Velocities()
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatal("velocity decreased with sensor range")
		}
	}
}

func TestSweepLogSpacing(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	res, err := Sweep(cfg, KnobComputeRate, 1, 100, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Points[1].Value-10) > 1e-9 {
		t.Errorf("log midpoint = %v, want 10", res.Points[1].Value)
	}
}

func TestSweepErrors(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	if _, err := Sweep(cfg, KnobPayload, 0, 10, 1, false); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Sweep(cfg, KnobPayload, 10, 10, 5, false); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := Sweep(cfg, KnobComputeRate, 0, 10, 5, true); err == nil {
		t.Error("log sweep from 0 accepted")
	}
	if _, err := Sweep(cfg, Knob(99), 1, 10, 5, false); err == nil {
		t.Error("unknown knob accepted")
	}
	// Sweeping sensor range through zero produces an invalid config.
	if _, err := Sweep(cfg, KnobSensorRange, -1, 1, 5, false); err == nil {
		t.Error("invalid config point accepted")
	}
}

func TestKnobStrings(t *testing.T) {
	for knob, want := range map[Knob]string{
		KnobPayload:     "payload (g)",
		KnobSensorRange: "sensor range (m)",
		KnobSensorRate:  "sensor rate (Hz)",
		KnobComputeRate: "compute rate (Hz)",
		Knob(99):        "Knob(99)",
	} {
		if knob.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(knob), knob.String(), want)
		}
	}
}
