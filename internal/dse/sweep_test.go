package dse

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
)

func pelicanDroNetConfig(t *testing.T) core.Config {
	t.Helper()
	cat := catalog.Default()
	cfg, err := cat.BuildConfig(catalog.Selection{
		UAV: catalog.UAVAscTecPelican, Compute: catalog.ComputeTX2, Algorithm: catalog.AlgoDroNet})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestSweepComputeRateFindsBoundTransition(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	res, err := Sweep(cfg, KnobComputeRate, 1, 200, 60, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 60 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Velocity is non-decreasing in compute rate.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Analysis.SafeVelocity < res.Points[i-1].Analysis.SafeVelocity {
			t.Fatalf("velocity decreased at %v Hz", res.Points[i].Value)
		}
	}
	// Somewhere between 1 and 200 Hz the design crosses compute-bound →
	// physics-bound (the knee is at 43 Hz).
	trans := res.BoundTransitions()
	if len(trans) == 0 {
		t.Fatal("no bound transition found")
	}
	v := trans[0].Value
	if v < 30 || v > 60 {
		t.Errorf("transition at %v Hz, want near the 43 Hz knee", v)
	}
}

func TestSweepPayloadMonotone(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	res, err := Sweep(cfg, KnobPayload, 80, 550, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := res.Velocities()
	if len(xs) != 40 || len(ys) != 40 {
		t.Fatal("series length wrong")
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+1e-9 {
			t.Fatalf("velocity increased with payload at %v g", xs[i])
		}
	}
}

func TestSweepSensorRangeMonotone(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	res, err := Sweep(cfg, KnobSensorRange, 1, 20, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	_, ys := res.Velocities()
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatal("velocity decreased with sensor range")
		}
	}
}

func TestSweepLogSpacing(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	res, err := Sweep(cfg, KnobComputeRate, 1, 100, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Points[1].Value-10) > 1e-9 {
		t.Errorf("log midpoint = %v, want 10", res.Points[1].Value)
	}
}

func TestSweepErrors(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	if _, err := Sweep(cfg, KnobPayload, 0, 10, 1, false); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Sweep(cfg, KnobPayload, 10, 10, 5, false); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := Sweep(cfg, KnobComputeRate, 0, 10, 5, true); err == nil {
		t.Error("log sweep from 0 accepted")
	}
	if _, err := Sweep(cfg, Knob(99), 1, 10, 5, false); err == nil {
		t.Error("unknown knob accepted")
	}
	// Sweeping sensor range through zero produces an invalid config.
	if _, err := Sweep(cfg, KnobSensorRange, -1, 1, 5, false); err == nil {
		t.Error("invalid config point accepted")
	}
}

// serialSweep recomputes a sweep point-by-point with direct Analyze
// calls — the reference the parallel chunked path must reproduce.
func serialSweep(t *testing.T, cfg core.Config, knob Knob, lo, hi float64, n int, logSpace bool) []SweepPoint {
	t.Helper()
	pts := make([]SweepPoint, n)
	for i := 0; i < n; i++ {
		v := sampleAt(lo, hi, i, n, logSpace)
		an, err := core.Analyze(knob.apply(cfg, v))
		if err != nil {
			t.Fatal(err)
		}
		pts[i] = SweepPoint{Value: v, Analysis: an}
	}
	return pts
}

func TestSweepChunkBoundaries(t *testing.T) {
	// Point counts straddling the serial threshold and the chunk-size
	// rounding: below the parallel cutoff, exactly at it, one past it,
	// an exact chunk multiple, and off-by-one around one.
	cfg := pelicanDroNetConfig(t)
	for _, n := range []int{2, 63, 64, 65, 127, 128, 129, 200} {
		res, err := Sweep(cfg, KnobComputeRate, 1, 200, n, true)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := serialSweep(t, cfg, KnobComputeRate, 1, 200, n, true)
		if len(res.Points) != n {
			t.Fatalf("n=%d: got %d points", n, len(res.Points))
		}
		for i := range want {
			if res.Points[i].Value != want[i].Value {
				t.Fatalf("n=%d point %d: value %v, want %v", n, i, res.Points[i].Value, want[i].Value)
			}
			if res.Points[i].Analysis.SafeVelocity != want[i].Analysis.SafeVelocity {
				t.Fatalf("n=%d point %d: velocity diverges from serial", n, i)
			}
		}
	}
}

func TestSweepParallelErrorIsFirstSerialError(t *testing.T) {
	// A payload sweep crossing into negative territory fails validation
	// partway through; the parallel path must report an error (the
	// lowest-chunk one) and return no partial result.
	cfg := pelicanDroNetConfig(t)
	res, err := Sweep(cfg, KnobPayload, -50, 550, 128, false)
	if err == nil {
		t.Fatal("invalid sweep accepted")
	}
	if len(res.Points) != 0 {
		t.Fatalf("failed sweep returned %d points", len(res.Points))
	}
}

func TestGridSweep(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	res, err := GridSweep(cfg, KnobComputeRate, 1, 200, 12, KnobPayload, 80, 550, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Xs) != 12 || len(res.Ys) != 11 || len(res.Cells) != 11 {
		t.Fatalf("grid shape %dx%d (%d rows)", len(res.Xs), len(res.Ys), len(res.Cells))
	}
	for yi, row := range res.Cells {
		if len(row) != 12 {
			t.Fatalf("row %d has %d cells", yi, len(row))
		}
		for xi, an := range row {
			want, err := core.Analyze(KnobPayload.apply(KnobComputeRate.apply(cfg, res.Xs[xi]), res.Ys[yi]))
			if err != nil {
				t.Fatal(err)
			}
			if an.SafeVelocity != want.SafeVelocity {
				t.Fatalf("cell (%d,%d) diverges from direct analysis", xi, yi)
			}
		}
	}
	// More compute never hurts; more payload never helps.
	for yi := range res.Cells {
		for xi := 1; xi < len(res.Xs); xi++ {
			if res.Cells[yi][xi].SafeVelocity < res.Cells[yi][xi-1].SafeVelocity {
				t.Fatal("velocity decreased with compute rate")
			}
		}
	}
	for xi := range res.Xs {
		for yi := 1; yi < len(res.Ys); yi++ {
			if res.Cells[yi][xi].SafeVelocity > res.Cells[yi-1][xi].SafeVelocity+1e-9 {
				t.Fatal("velocity increased with payload")
			}
		}
	}
}

func TestGridSweepErrors(t *testing.T) {
	cfg := pelicanDroNetConfig(t)
	if _, err := GridSweep(cfg, KnobComputeRate, 1, 200, 1, KnobPayload, 80, 550, 5); err == nil {
		t.Error("nx=1 accepted")
	}
	if _, err := GridSweep(cfg, KnobComputeRate, 200, 1, 5, KnobPayload, 80, 550, 5); err == nil {
		t.Error("empty x range accepted")
	}
	if _, err := GridSweep(cfg, KnobComputeRate, 1, 200, 5, KnobComputeRate, 1, 200, 5); err == nil {
		t.Error("same knob twice accepted")
	}
	if _, err := GridSweep(cfg, Knob(99), 1, 200, 5, KnobPayload, 80, 550, 5); err == nil {
		t.Error("unknown knob accepted")
	}
}

func TestKnobStrings(t *testing.T) {
	for knob, want := range map[Knob]string{
		KnobPayload:     "payload (g)",
		KnobSensorRange: "sensor range (m)",
		KnobSensorRate:  "sensor rate (Hz)",
		KnobComputeRate: "compute rate (Hz)",
		Knob(99):        "Knob(99)",
	} {
		if knob.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(knob), knob.String(), want)
		}
	}
}

func TestSweepContextCancelled(t *testing.T) {
	cat := catalog.Default()
	cfg, err := cat.BuildConfig(catalog.Selection{
		UAV: catalog.UAVAscTecPelican, Compute: catalog.ComputeTX2, Algorithm: catalog.AlgoDroNet})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Both the serial (< threshold) and chunked paths observe the dead
	// context before evaluating.
	if _, err := SweepContext(ctx, cfg, KnobPayload, 0, 500, 10, false, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("serial sweep: err = %v, want context.Canceled", err)
	}
	if _, err := SweepContext(ctx, cfg, KnobPayload, 0, 500, 500, false, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("chunked sweep: err = %v, want context.Canceled", err)
	}
	if _, err := GridSweepContext(ctx, cfg, KnobPayload, 0, 500, 20, KnobComputeRate, 1, 100, 20, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("grid sweep: err = %v, want context.Canceled", err)
	}
}

func TestSweepContextMatchesSweep(t *testing.T) {
	cat := catalog.Default()
	cfg, err := cat.BuildConfig(catalog.Selection{
		UAV: catalog.UAVAscTecPelican, Compute: catalog.ComputeTX2, Algorithm: catalog.AlgoDroNet})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Sweep(cfg, KnobComputeRate, 1, 200, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	// A capped pool (a server's per-request workers clamp) must produce
	// the identical result.
	capped, err := SweepContext(context.Background(), cfg, KnobComputeRate, 1, 200, 100, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(capped.Points, plain.Points) {
		t.Error("workers=1 sweep diverges from default pool")
	}
	scoped, err := SweepContext(context.Background(), cfg, KnobComputeRate, 1, 200, 100, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, scoped) {
		t.Error("SweepContext diverges from Sweep")
	}
}
