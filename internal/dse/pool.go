package dse

import (
	"context"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the dse package's internal work-stealing scheduler — the
// one engine behind Explorer.Candidates/ExploreContext and the
// Sweep/GridSweep evaluators (forEachParallel in sweep.go).
//
// The candidate index space [0,n) is split into one coarse contiguous
// range per worker, seeded into per-worker deques. A worker claims small
// grains from the low end of its own deque; when the deque runs dry it
// steals half of the richest victim's remaining indices from the HIGH
// end (steal-half splitting). Skewed spaces — where some cells analyze
// orders of magnitude slower than others — therefore rebalance
// dynamically: the moment any worker runs out, it takes half of the
// biggest backlog, recursively, so the tail of a sweep is bounded by a
// single grain's work instead of a whole fixed-size chunk.
//
// Determinism is preserved by construction, not by scheduling: workers
// only ever claim disjoint index ranges, results carry their range, and
// the streaming layer (orderedSink) re-merges them in ascending index
// order. The output is element-for-element identical to a serial scan
// for every worker count, every grain size and every steal interleaving.

// span is a half-open index range [start, end).
type span struct{ start, end int }

func (s span) size() int { return s.end - s.start }

// stealDeque is one worker's queue of unclaimed spans, kept in ascending
// index order. The owner claims grains from the lowest span (so the
// stream's front is produced as early as possible); thieves split off
// the high half. Claimed work never re-enters a deque, so anything a
// worker is computing is invisible to thieves.
type stealDeque struct {
	mu    sync.Mutex
	spans []span
	// remaining mirrors the spans' total index count so victim selection
	// can scan sizes without taking every lock. It is only written under
	// mu; reads are approximate by design.
	remaining atomic.Int64
}

// claim pops a grain of at most g indices from the front (lowest
// indices) of the deque.
//
//reprolint:hotpath
func (d *stealDeque) claim(g int) (span, bool) {
	d.mu.Lock()
	if len(d.spans) == 0 {
		d.mu.Unlock()
		return span{}, false
	}
	s := d.spans[0]
	out := span{start: s.start, end: min(s.start+g, s.end)}
	if out.end >= s.end {
		d.spans = d.spans[1:]
	} else {
		d.spans[0].start = out.end
	}
	d.remaining.Add(int64(-out.size()))
	d.mu.Unlock()
	return out, true
}

// stealHalf removes the high half (ceil) of the deque's remaining
// indices — whole spans off the back, splitting at most one — and
// returns them in ascending order. nil when the deque is empty.
//
//reprolint:hotpath
func (d *stealDeque) stealHalf() []span {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := 0
	for _, s := range d.spans {
		total += s.size()
	}
	if total == 0 {
		return nil
	}
	take := (total + 1) / 2 // at least one index whenever any remain
	taken := take
	// Whole spans come off the back and at most one is split, so the
	// result can never outgrow the deque itself.
	stolen := make([]span, 0, len(d.spans))
	for take > 0 {
		last := len(d.spans) - 1
		s := d.spans[last]
		if s.size() <= take {
			stolen = append(stolen, s)
			d.spans = d.spans[:last]
			take -= s.size()
		} else {
			mid := s.end - take
			d.spans[last].end = mid
			stolen = append(stolen, span{start: mid, end: s.end})
			take = 0
		}
	}
	// Collected back-to-front; restore ascending order so the thief's
	// own claims stay lowest-first.
	for i, j := 0, len(stolen)-1; i < j; i, j = i+1, j-1 {
		stolen[i], stolen[j] = stolen[j], stolen[i]
	}
	d.remaining.Add(int64(-taken))
	return stolen
}

// install appends stolen spans (ascending, all above the deque's current
// contents — thieves only steal when their own deque is empty, and
// spans only enter a deque through its owner).
//
//reprolint:hotpath
func (d *stealDeque) install(spans []span) {
	n := 0
	for _, s := range spans {
		n += s.size()
	}
	d.mu.Lock()
	//reprolint:allow hotpathalloc the deque keeps its backing array across installs, so growth amortizes over the pool run
	d.spans = append(d.spans, spans...)
	d.remaining.Add(int64(n))
	d.mu.Unlock()
}

// stealGrain picks the default claim quantum: fine enough that a skewed
// cell's neighbors can be stolen away (a worker's tail is at most one
// grain), coarse enough that deque and merge traffic stay negligible.
func stealGrain(n, workers int) int {
	g := n / (workers * 16)
	if g < 8 {
		g = 8
	}
	if g > 512 {
		g = 512
	}
	return g
}

// stealRun fans process over [0,n) across a pool of workers with
// work stealing and blocks until every worker has exited. Each worker
// repeatedly claims a grain-sized span (own deque lowest-first, else
// steal-half from the richest victim) and calls process on it; process
// returning false aborts the whole pool, as does ctx expiring. Claimed
// spans are always handed to process exactly once; on abort, unclaimed
// spans are simply dropped.
//
//reprolint:hotpath
func stealRun(ctx context.Context, n, workers, grain int, process func(w int, g span) bool) {
	if grain < 1 {
		grain = 1
	}
	deques := make([]stealDeque, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo < hi {
			deques[w].spans = []span{{start: lo, end: hi}}
			deques[w].remaining.Store(int64(hi - lo))
		}
	}
	var stop atomic.Bool
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//reprolint:allow hotpathalloc one goroutine launch per worker per pool run, amortized over every grain it processes
		go func(w int) {
			defer wg.Done()
			own := &deques[w]
			for {
				if stop.Load() {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				g, ok := own.claim(grain)
				if !ok {
					if stealInto(deques, w) {
						continue
					}
					if totalRemaining(deques) == 0 {
						return // every index is claimed or finished
					}
					// A victim emptied between the size scan and the
					// steal; let its owner make progress and retry.
					runtime.Gosched()
					continue
				}
				if !process(w, g) {
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// stealInto moves half of the richest victim's backlog into worker w's
// (empty) deque. False when no victim had work at scan time.
func stealInto(deques []stealDeque, w int) bool {
	victim, best := -1, int64(0)
	for i := range deques {
		if i == w {
			continue
		}
		if r := deques[i].remaining.Load(); r > best {
			victim, best = i, r
		}
	}
	if victim < 0 {
		return false
	}
	stolen := deques[victim].stealHalf()
	if len(stolen) == 0 {
		return false
	}
	deques[w].install(stolen)
	return true
}

// totalRemaining sums the unclaimed indices across every deque.
func totalRemaining(deques []stealDeque) int64 {
	var n int64
	for i := range deques {
		n += deques[i].remaining.Load()
	}
	return n
}

// chunkResult is one completed grain: the surviving candidates of
// [start, end) in index order, plus the first error hit inside it.
type chunkResult struct {
	cands []Candidate
	end   int
	err   error
}

// orderedSink merges out-of-order grain results back into ascending
// index order for the streaming consumer. Memory stays bounded: at most
// maxAhead grains are buffered beyond the one the consumer needs next;
// workers publishing further ahead block until the stream advances. The
// grain the consumer is waiting for is always admitted immediately, so
// the pipeline can never wedge on a full buffer.
type orderedSink struct {
	mu       sync.Mutex
	cond     sync.Cond
	next     int                 // start index of the grain the consumer needs
	results  map[int]chunkResult // keyed by grain start
	maxAhead int
	closed   bool // consumer gone: publishers must drop and exit
	done     bool // all producers exited
}

func newOrderedSink(maxAhead int) *orderedSink {
	o := &orderedSink{results: make(map[int]chunkResult), maxAhead: maxAhead}
	o.cond.L = &o.mu
	return o
}

// publish hands a completed grain to the consumer side, blocking while
// the reorder buffer is full (unless this grain is the one the stream
// needs next). False when the consumer has gone away.
func (o *orderedSink) publish(g span, cands []Candidate, err error) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for !o.closed && len(o.results) >= o.maxAhead && g.start != o.next {
		// The PR 4 wedged-publisher shape, on purpose: Wait releases mu
		// while parked, and close() broadcasts so no publisher outlives
		// the consumer.
		o.cond.Wait() //reprolint:allow lockorder — cond.Wait parks with mu released; take/close always Broadcast
	}
	if o.closed {
		return false
	}
	o.results[g.start] = chunkResult{cands: cands, end: g.end, err: err}
	o.cond.Broadcast()
	return true
}

// take blocks until the next grain in index order is available and
// returns it. ok is false when every producer has exited without
// publishing it — an aborted (cancelled) traversal.
func (o *orderedSink) take() (chunkResult, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		if r, ok := o.results[o.next]; ok {
			delete(o.results, o.next)
			o.next = r.end
			o.cond.Broadcast()
			return r, true
		}
		if o.done {
			return chunkResult{}, false
		}
		o.cond.Wait() //reprolint:allow lockorder — cond.Wait parks with mu released; publish/finish always Broadcast
	}
}

// close marks the consumer gone and releases blocked publishers.
func (o *orderedSink) close() {
	o.mu.Lock()
	o.closed = true
	o.cond.Broadcast()
	o.mu.Unlock()
}

// finish marks the producer side complete.
func (o *orderedSink) finish() {
	o.mu.Lock()
	o.done = true
	o.cond.Broadcast()
	o.mu.Unlock()
}

// streamStealing runs the plan over [0,n) on the work-stealing pool and
// yields each grain's surviving candidates in ascending index order, so
// the merged stream is byte-identical to a serial scan while the
// workers rebalance freely.
//
// Cancellation is request-scoped: the pool derives its own context from
// ctx, cancelled when the consumer breaks out of the iteration or when
// ctx itself is cancelled (a client disconnect, a deadline). Workers
// observe it between candidates, so in-flight grains abort instead of
// draining.
//
// A grain that fails yields its pre-error survivors along with the
// error; iteration stops after the first error, which — because grains
// are yielded in order — is the same error a serial scan would hit
// first. A parent-context cancellation surfaces as ctx.Err().
func streamStealing(ctx context.Context, p *plan, n, grain, workers int) iter.Seq2[[]Candidate, error] {
	return func(yield func([]Candidate, error) bool) {
		// cancel fires on every exit path: early consumer break, error,
		// or normal completion (a no-op by then).
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		sink := newOrderedSink(max(2*workers, 4))
		defer sink.close()
		// A dead context must also release publishers blocked on a full
		// reorder buffer — without this, an external cancellation could
		// strand a worker waiting for a stream that will never advance.
		stop := context.AfterFunc(ctx, sink.close)
		defer stop()
		go func() {
			stealRun(ctx, n, workers, grain, func(_ int, g span) bool {
				cands, err := p.processChunk(ctx, g.start, g.end)
				return sink.publish(g, cands, err)
			})
			sink.finish()
		}()
		for {
			r, ok := sink.take()
			if !ok {
				// The producers exited before covering the space: the
				// parent context died. Report the cancellation rather
				// than masquerading as a complete traversal.
				if err := ctx.Err(); err != nil {
					yield(nil, err)
				}
				return
			}
			if !yield(r.cands, r.err) || r.err != nil {
				return
			}
			if r.end >= n {
				return // the space is fully merged
			}
		}
	}
}
