package dse

import "iter"

// streamChunks fans the candidate index space [0,n) out across a
// bounded worker pool and yields each chunk's surviving candidates in
// ascending chunk order, so the merged stream is deterministic — byte
// identical to a serial scan — while the workers run out of order.
//
// Memory stays bounded: at most `workers` chunks are buffered ahead of
// the consumer (the dispatcher blocks once the ordered queue is full),
// and breaking out of the iteration cancels the remaining work.
//
// A chunk that fails yields its pre-error survivors along with the
// error; iteration stops after the first error, which — because chunks
// are yielded in order — is the same error a serial scan would hit
// first.
func streamChunks(p *plan, n, chunk, workers int) iter.Seq2[[]Candidate, error] {
	return func(yield func([]Candidate, error) bool) {
		type job struct {
			start, end int
			out        chan chunkResult
		}
		done := make(chan struct{})
		defer close(done)
		jobs := make(chan *job)
		ordered := make(chan *job, workers)

		// Dispatcher: enqueue chunks in order. Both sends abort when the
		// consumer is gone.
		go func() {
			defer close(jobs)
			defer close(ordered)
			for start := 0; start < n; start += chunk {
				j := &job{start: start, end: min(start+chunk, n), out: make(chan chunkResult, 1)}
				select {
				case ordered <- j:
				case <-done:
					return
				}
				select {
				case jobs <- j:
				case <-done:
					return
				}
			}
		}()
		for w := 0; w < workers; w++ {
			go func() {
				for j := range jobs {
					cands, err := p.processChunk(j.start, j.end)
					j.out <- chunkResult{cands: cands, err: err} // cap 1: never blocks
				}
			}()
		}
		for j := range ordered {
			res := <-j.out
			if !yield(res.cands, res.err) || res.err != nil {
				return
			}
		}
	}
}

// chunkResult is one completed work unit.
type chunkResult struct {
	cands []Candidate
	err   error
}
