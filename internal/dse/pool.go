package dse

import (
	"context"
	"iter"
)

// streamChunks fans the candidate index space [0,n) out across a
// bounded worker pool and yields each chunk's surviving candidates in
// ascending chunk order, so the merged stream is deterministic — byte
// identical to a serial scan — while the workers run out of order.
//
// Memory stays bounded: at most `workers` chunks are buffered ahead of
// the consumer (the dispatcher blocks once the ordered queue is full).
//
// Cancellation is request-scoped: the pool derives its own context from
// ctx, cancelled when the consumer breaks out of the iteration or when
// ctx itself is cancelled (a client disconnect, a deadline). Workers
// observe it between candidates, so in-flight chunks abort instead of
// draining to completion.
//
// A chunk that fails yields its pre-error survivors along with the
// error; iteration stops after the first error, which — because chunks
// are yielded in order — is the same error a serial scan would hit
// first. A parent-context cancellation surfaces as ctx.Err() on the
// first chunk that observed it.
func streamChunks(ctx context.Context, p *plan, n, chunk, workers int) iter.Seq2[[]Candidate, error] {
	return func(yield func([]Candidate, error) bool) {
		type job struct {
			start, end int
			out        chan chunkResult
		}
		// cancel fires on every exit path: early consumer break, error,
		// or normal completion (a no-op by then). Workers and the
		// dispatcher all hang off this context.
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		done := ctx.Done()
		jobs := make(chan *job)
		ordered := make(chan *job, workers)

		// Dispatcher: enqueue chunks in order. Both sends abort when the
		// consumer is gone. A job that made it into the ordered queue but
		// not to a worker still gets a result — the cancellation error —
		// so the consumer can never block on an orphaned handoff.
		go func() {
			defer close(jobs)
			defer close(ordered)
			for start := 0; start < n; start += chunk {
				j := &job{start: start, end: min(start+chunk, n), out: make(chan chunkResult, 1)}
				select {
				case ordered <- j:
				case <-done:
					return
				}
				select {
				case jobs <- j:
				case <-done:
					j.out <- chunkResult{err: ctx.Err()} // cap 1: never blocks
					return
				}
			}
		}()
		for w := 0; w < workers; w++ {
			go func() {
				for j := range jobs {
					cands, err := p.processChunk(ctx, j.start, j.end)
					j.out <- chunkResult{cands: cands, err: err} // cap 1: never blocks
				}
			}()
		}
		for j := range ordered {
			res := <-j.out
			if !yield(res.cands, res.err) || res.err != nil {
				return
			}
		}
		// The ordered queue can close without an error having surfaced
		// when the parent context died before every chunk was enqueued;
		// report the cancellation rather than masquerading as a complete
		// traversal.
		if err := ctx.Err(); err != nil {
			yield(nil, err)
		}
	}
}

// chunkResult is one completed work unit.
type chunkResult struct {
	cands []Candidate
	err   error
}
