package main

import (
	"strings"
	"testing"
)

func TestRunDefaultAnalysis(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"AscTec Pelican", "Knee point", "(43 Hz", "physics-bound",
		"over-provisioned", "tip:", "F-1:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"UAVs:", "DJI Spark", "Nvidia TX2", "DroNet", "Sensors:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunTDPOverride(t *testing.T) {
	var buf strings.Builder
	err := run([]string{
		"-uav", "DJI Spark", "-compute", "Nvidia AGX", "-algorithm", "DroNet",
		"-tdp", "15", "-plot=false",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "15 W") {
		t.Errorf("TDP variant not reflected: %s", buf.String())
	}
	if strings.Contains(buf.String(), "F-1:") {
		t.Error("-plot=false still rendered a chart")
	}
}

func TestRunExtraPayload(t *testing.T) {
	var base, heavy strings.Builder
	if err := run([]string{"-plot=false"}, &base); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-plot=false", "-extra-payload", "150"}, &heavy); err != nil {
		t.Fatal(err)
	}
	if base.String() == heavy.String() {
		t.Error("extra payload had no effect on the report")
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-uav", "bogus"}, &buf); err == nil {
		t.Error("unknown UAV accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}
