// Command f1 analyzes a UAV configuration with the F-1 model from the
// terminal: it prints the knee point, bounds, design classification,
// optimization tips and an ASCII rendering of the roofline.
//
// Usage:
//
//	f1 -uav "AscTec Pelican" -compute "Nvidia TX2" -algorithm DroNet
//	f1 -list                             # show catalog contents
//	f1 -uav "DJI Spark" -compute "Nvidia AGX" -algorithm DroNet -tdp 15
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/skyline"
	"repro/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "f1:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("f1", flag.ContinueOnError)
	uav := fs.String("uav", catalog.UAVAscTecPelican, "UAV preset name")
	compute := fs.String("compute", catalog.ComputeTX2, "onboard compute preset name")
	algo := fs.String("algorithm", catalog.AlgoDroNet, "autonomy algorithm preset name")
	sensor := fs.String("sensor", "", "sensor preset name (default: UAV's default)")
	tdp := fs.Float64("tdp", 0, "TDP override in watts (resizes the heatsink)")
	extra := fs.Float64("extra-payload", 0, "extra payload in grams")
	list := fs.Bool("list", false, "list catalog components and exit")
	ascii := fs.Bool("plot", true, "render an ASCII F-1 plot")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cat := catalog.Default()
	if *list {
		printList(w, cat)
		return nil
	}
	sel := catalog.Selection{
		UAV: *uav, Compute: *compute, Algorithm: *algo, Sensor: *sensor,
		ExtraPayload: units.Grams(*extra),
	}
	if *tdp > 0 {
		sel.TDPOverride = units.Watts(*tdp)
	}
	an, err := cat.Analyze(sel)
	if err != nil {
		return err
	}
	printAnalysis(w, an)
	if *ascii {
		text, err := skyline.Chart(an).ASCII(72, 18)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, text)
	}
	return nil
}

func printList(w io.Writer, cat *catalog.Catalog) {
	fmt.Fprintln(w, "UAVs:")
	for _, n := range cat.UAVNames() {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w, "Onboard computes:")
	for _, n := range cat.ComputeNames() {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w, "Sensors:")
	for _, n := range cat.SensorNames() {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w, "Algorithms (measured platforms):")
	for _, n := range cat.AlgorithmNames() {
		fmt.Fprintf(w, "  %s: %v\n", n, cat.PerfTable().Platforms(n))
	}
}

func printAnalysis(w io.Writer, an core.Analysis) {
	fmt.Fprintf(w, "Configuration : %s\n", an.Config.Name)
	fmt.Fprintf(w, "Payload       : %v\n", an.Config.Payload)
	fmt.Fprintf(w, "a_max         : %v\n", an.AMax)
	fmt.Fprintf(w, "f_action      : %v (bottleneck: %s)\n", an.Action, an.BottleneckStage)
	fmt.Fprintf(w, "Knee point    : %v\n", an.Knee)
	fmt.Fprintf(w, "Physics roof  : %v\n", an.Roof)
	fmt.Fprintf(w, "Safe velocity : %v\n", an.SafeVelocity)
	fmt.Fprintf(w, "Bound         : %v\n", an.Bound)
	fmt.Fprintf(w, "Design class  : %v (gap %.2f×)\n", an.Class, an.GapFactor)
	for _, tip := range skyline.Tips(an) {
		fmt.Fprintf(w, "tip: %s\n", tip)
	}
}
