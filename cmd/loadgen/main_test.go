package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestParseFaults(t *testing.T) {
	specs, err := parseFaults("core.cache.fill=error, dse.chunk=latency:50ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].site != "core.cache.fill" || specs[0].fault.Err == nil {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].site != "dse.chunk" || specs[1].fault.Latency != 50*time.Millisecond {
		t.Errorf("spec 1 = %+v", specs[1])
	}

	for _, bad := range []string{"nosite", "s=unknown", "s=latency:x", "s=latency:-1s"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("parseFaults(%q) accepted", bad)
		}
	}
	if specs, err := parseFaults(""); err != nil || specs != nil {
		t.Errorf("empty spec = %v, %v", specs, err)
	}
}

func TestParseMetrics(t *testing.T) {
	text := `# HELP skyline_queue_depth Requests waiting.
# TYPE skyline_queue_depth gauge
skyline_queue_depth 3
skyline_shed_total{reason="queue_full"} 7
skyline_request_duration_seconds{endpoint="/explore",quantile="0.99"} 0.125
`
	m, err := parseMetrics(text)
	if err != nil {
		t.Fatal(err)
	}
	if m["skyline_queue_depth"] != 3 {
		t.Errorf("queue_depth = %v", m["skyline_queue_depth"])
	}
	if m[`skyline_shed_total{reason="queue_full"}`] != 7 {
		t.Errorf("shed_total = %v", m[`skyline_shed_total{reason="queue_full"}`])
	}

	for _, bad := range []string{
		"lonely_name\n",
		"name with spaces 1\n",
		"name notanumber\n",
		"# only comments\n",
	} {
		if _, err := parseMetrics(bad); err == nil {
			t.Errorf("parseMetrics(%q) accepted", bad)
		}
	}
}

// TestRunSmoke drives the full in-process harness briefly: a tiny
// slot pool with quotas on guarantees real sheds, and the report must
// come back consistent with a parsed /metrics scrape.
func TestRunSmoke(t *testing.T) {
	defer faultinject.Reset()
	rep, err := run([]string{
		"-duration", "400ms",
		"-clients", "6",
		"-max-inflight", "1",
		"-queue-depth", "2",
		"-client-rps", "5",
		"-default-timeout", "250ms",
		"-json",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts == 0 {
		t.Fatal("no requests attempted")
	}
	if rep.Errors != 0 {
		t.Fatalf("transport errors: %d", rep.Errors)
	}
	if !rep.MetricsOK {
		t.Fatal("/metrics did not parse")
	}
	if len(rep.ByStatus) == 0 {
		t.Fatal("no statuses recorded")
	}
	// With 6 clients on 1 slot + queue of 2, the admission layer must
	// have been exercised (sheds or queue waits — either proves it).
	if rep.Server.sheds() == 0 && rep.Server.QueueWaitP99 == 0 {
		t.Error("saturation run produced neither sheds nor queue waits")
	}
	if failures := rep.gateFailures(); len(failures) != 0 {
		t.Fatalf("ungated run reported failures: %v", failures)
	}
}

// TestRunFaultArmsAndDisarms checks -fault wires through: an error
// fault at the cache-fill site must turn analysis traffic into
// non-200s without breaking the harness, and the disarm must not leak
// into later runs.
func TestRunFaultArmsAndDisarms(t *testing.T) {
	defer faultinject.Reset()
	rep, err := run([]string{
		"-duration", "200ms",
		"-clients", "2",
		"-scenario", "hot",
		"-fault", "core.cache.fill=error",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("transport errors: %d", rep.Errors)
	}
	if n := rep.ByStatus["200"]; n != 0 {
		t.Errorf("fault-injected hot traffic got %d OKs, want 0", n)
	}
	if rep.ByStatus["400"] == 0 {
		t.Errorf("fault-injected hot traffic produced no 400s: %v", rep.ByStatus)
	}

	// The run's deferred disarm must have fired.
	if err := faultinject.Fire(faultinject.SiteCacheFill); err != nil {
		t.Fatalf("fault still armed after run: %v", err)
	}

	if _, err := run([]string{"-fault", "x=error", "-url", "http://example.invalid"}, io.Discard); err == nil {
		t.Error("-fault with -url accepted; faults cannot arm a remote process")
	}
}

// TestRunRestartScenario drives the warm-start smoke end to end: cold
// pass computes and spills, warm pass (fresh server, same store dir)
// answers everything from disk byte-identically.
func TestRunRestartScenario(t *testing.T) {
	rep, err := run([]string{
		"-scenario", "restart",
		"-restart-requests", "8",
		"-store-dir", t.TempDir(),
		"-min-store-hit-rate", "0.99",
		"-json",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	rr := rep.Restart
	if rr == nil {
		t.Fatal("restart run produced no restart report")
	}
	if rr.Requests != 8 || rep.Attempts != 16 {
		t.Fatalf("requests = %d, attempts = %d; want 8 driven twice", rr.Requests, rep.Attempts)
	}
	if rr.ByteMismatches != 0 {
		t.Fatalf("warm pass diverged: %d byte mismatches", rr.ByteMismatches)
	}
	if rr.WarmStoreHits != 8 || rr.WarmStoreHitRate != 1 {
		t.Fatalf("warm store hits = %d (rate %v); want all 8 from the store", rr.WarmStoreHits, rr.WarmStoreHitRate)
	}
	if rr.RecoveredArtifacts != 8 {
		t.Fatalf("recovered artifacts = %v, want 8", rr.RecoveredArtifacts)
	}
	if !rep.MetricsOK {
		t.Fatal("warm /metrics did not parse")
	}
	if failures := rep.gateFailures(); len(failures) != 0 {
		t.Fatalf("clean restart run reported failures: %v", failures)
	}

	// Misconfigurations are rejected up front.
	for _, args := range [][]string{
		{"-scenario", "restart,hot"},
		{"-scenario", "restart", "-url", "http://example.invalid"},
		{"-scenario", "restart", "-restart-requests", "0"},
	} {
		if _, err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestRestartURLsDeterministic(t *testing.T) {
	a, b := restartURLs(12), restartURLs(12)
	if len(a) != 12 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("url %d differs across builds: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestReportGates(t *testing.T) {
	r := &report{
		Attempts:    100,
		ShedRate:    0.5,
		Server:      serverSide{QueueWaitP99: 2.0},
		MetricsOK:   true,
		maxShedRate: 0.25,
		maxP99Wait:  time.Second,
	}
	fails := r.gateFailures()
	if len(fails) != 2 {
		t.Fatalf("gateFailures = %v, want shed-rate and p99 violations", fails)
	}
	joined := strings.Join(fails, "; ")
	if !strings.Contains(joined, "shed rate") || !strings.Contains(joined, "p99") {
		t.Errorf("gate messages = %q", joined)
	}

	r.maxShedRate = 1
	r.maxP99Wait = 0
	if fails := r.gateFailures(); len(fails) != 0 {
		t.Errorf("ungated report fails: %v", fails)
	}

	// Restart gates: byte mismatches always fail; the hit-rate gate
	// only when configured.
	r.Restart = &restartReport{Requests: 8, ByteMismatches: 1, WarmStoreHitRate: 0.5}
	if fails := r.gateFailures(); len(fails) != 1 || !strings.Contains(fails[0], "byte") {
		t.Errorf("mismatch gate = %v", fails)
	}
	r.Restart.ByteMismatches = 0
	r.minStoreHitRate = 0.9
	if fails := r.gateFailures(); len(fails) != 1 || !strings.Contains(fails[0], "store-hit rate") {
		t.Errorf("hit-rate gate = %v", fails)
	}
	r.Restart.WarmStoreHitRate = 1
	if fails := r.gateFailures(); len(fails) != 0 {
		t.Errorf("clean restart report fails: %v", fails)
	}
}
