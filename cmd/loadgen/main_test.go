package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestParseFaults(t *testing.T) {
	specs, err := parseFaults("core.cache.fill=error, dse.chunk=latency:50ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].site != "core.cache.fill" || specs[0].fault.Err == nil {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].site != "dse.chunk" || specs[1].fault.Latency != 50*time.Millisecond {
		t.Errorf("spec 1 = %+v", specs[1])
	}

	for _, bad := range []string{"nosite", "s=unknown", "s=latency:x", "s=latency:-1s"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("parseFaults(%q) accepted", bad)
		}
	}
	if specs, err := parseFaults(""); err != nil || specs != nil {
		t.Errorf("empty spec = %v, %v", specs, err)
	}
}

func TestParseMetrics(t *testing.T) {
	text := `# HELP skyline_queue_depth Requests waiting.
# TYPE skyline_queue_depth gauge
skyline_queue_depth 3
skyline_shed_total{reason="queue_full"} 7
skyline_request_duration_seconds{endpoint="/explore",quantile="0.99"} 0.125
`
	m, err := parseMetrics(text)
	if err != nil {
		t.Fatal(err)
	}
	if m["skyline_queue_depth"] != 3 {
		t.Errorf("queue_depth = %v", m["skyline_queue_depth"])
	}
	if m[`skyline_shed_total{reason="queue_full"}`] != 7 {
		t.Errorf("shed_total = %v", m[`skyline_shed_total{reason="queue_full"}`])
	}

	for _, bad := range []string{
		"lonely_name\n",
		"name with spaces 1\n",
		"name notanumber\n",
		"# only comments\n",
	} {
		if _, err := parseMetrics(bad); err == nil {
			t.Errorf("parseMetrics(%q) accepted", bad)
		}
	}
}

// TestRunSmoke drives the full in-process harness briefly: a tiny
// slot pool with quotas on guarantees real sheds, and the report must
// come back consistent with a parsed /metrics scrape.
func TestRunSmoke(t *testing.T) {
	defer faultinject.Reset()
	rep, err := run([]string{
		"-duration", "400ms",
		"-clients", "6",
		"-max-inflight", "1",
		"-queue-depth", "2",
		"-client-rps", "5",
		"-default-timeout", "250ms",
		"-json",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts == 0 {
		t.Fatal("no requests attempted")
	}
	if rep.Errors != 0 {
		t.Fatalf("transport errors: %d", rep.Errors)
	}
	if !rep.MetricsOK {
		t.Fatal("/metrics did not parse")
	}
	if len(rep.ByStatus) == 0 {
		t.Fatal("no statuses recorded")
	}
	// With 6 clients on 1 slot + queue of 2, the admission layer must
	// have been exercised (sheds or queue waits — either proves it).
	if rep.Server.sheds() == 0 && rep.Server.QueueWaitP99 == 0 {
		t.Error("saturation run produced neither sheds nor queue waits")
	}
	if failures := rep.gateFailures(); len(failures) != 0 {
		t.Fatalf("ungated run reported failures: %v", failures)
	}
}

// TestRunFaultArmsAndDisarms checks -fault wires through: an error
// fault at the cache-fill site must turn analysis traffic into
// non-200s without breaking the harness, and the disarm must not leak
// into later runs.
func TestRunFaultArmsAndDisarms(t *testing.T) {
	defer faultinject.Reset()
	rep, err := run([]string{
		"-duration", "200ms",
		"-clients", "2",
		"-scenario", "hot",
		"-fault", "core.cache.fill=error",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("transport errors: %d", rep.Errors)
	}
	if n := rep.ByStatus["200"]; n != 0 {
		t.Errorf("fault-injected hot traffic got %d OKs, want 0", n)
	}
	if rep.ByStatus["400"] == 0 {
		t.Errorf("fault-injected hot traffic produced no 400s: %v", rep.ByStatus)
	}

	// The run's deferred disarm must have fired.
	if err := faultinject.Fire(faultinject.SiteCacheFill); err != nil {
		t.Fatalf("fault still armed after run: %v", err)
	}

	if _, err := run([]string{"-fault", "x=error", "-url", "http://example.invalid"}, io.Discard); err == nil {
		t.Error("-fault with -url accepted; faults cannot arm a remote process")
	}
}

func TestReportGates(t *testing.T) {
	r := &report{
		Attempts:    100,
		ShedRate:    0.5,
		Server:      serverSide{QueueWaitP99: 2.0},
		MetricsOK:   true,
		maxShedRate: 0.25,
		maxP99Wait:  time.Second,
	}
	fails := r.gateFailures()
	if len(fails) != 2 {
		t.Fatalf("gateFailures = %v, want shed-rate and p99 violations", fails)
	}
	joined := strings.Join(fails, "; ")
	if !strings.Contains(joined, "shed rate") || !strings.Contains(joined, "p99") {
		t.Errorf("gate messages = %q", joined)
	}

	r.maxShedRate = 1
	r.maxP99Wait = 0
	if fails := r.gateFailures(); len(fails) != 0 {
		t.Errorf("ungated report fails: %v", fails)
	}
}
