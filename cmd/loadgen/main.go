// Command loadgen replays representative Skyline traffic against a
// server and reports what the admission layer did with it. It is the
// saturation smoke harness: point it at a live server with -url, or
// let it spin up an in-process server (the default) shaped by the
// same knobs cmd/skyline exposes, optionally with faults armed in the
// analysis cache or the exploration engine.
//
// Usage:
//
//	loadgen [-url http://host:8080] [-duration 5s] [-clients 8]
//	        [-scenario hot,cold,disconnect,burst]
//	        [-fault core.cache.fill=error | dse.chunk=panic | site=latency:50ms]
//	        [-max-inflight 2] [-queue-depth 4] [-client-rps 0]
//	        [-default-timeout 0] [-seed 1]
//	        [-max-shed-rate 1] [-max-p99-wait 0] [-json]
//	        [-store-dir dir] [-restart-requests 12] [-min-store-hit-rate 0]
//
// Scenarios (comma-separated; default all):
//
//	hot         repeat a small set of analysis requests — cache hits
//	cold        distinct explorations — cache misses, real engine work
//	disconnect  open streaming explorations and drop them mid-stream
//	burst       hammer one API key far past any quota
//	restart     warm-start smoke: run a deterministic request list
//	            against an in-process server backed by the persistent
//	            result store, tear the server down, open a fresh one
//	            (new process state, same store dir), replay the list,
//	            and compare every response byte for byte. Must be the
//	            sole scenario; always in-process. -store-dir roots the
//	            store (default: a private temp dir), -restart-requests
//	            sizes the list, and -min-store-hit-rate gates the warm
//	            pass's served-from-store rate (0 = no gate; byte
//	            mismatches always fail). The report records cold/warm
//	            wall times and the warm pass's store hits.
//
// -fault arms an injection site before the run (in-process mode only):
// kinds are error, panic, and latency:<duration>. After the run
// loadgen scrapes /metrics, re-parses the exposition text (a format
// regression fails the run), and folds the server-side shed counters
// and queue-wait quantiles into the report.
//
// Gates: -max-shed-rate bounds sheds/attempts (default 1 = no gate)
// and -max-p99-wait bounds the queue-wait p99 (0 = no gate). A
// violated gate, a transport-level error, or unparseable /metrics
// output exits non-zero — CI fails on a robustness regression, not on
// a human reading a report.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/skyline"
	"repro/internal/store"
)

func main() {
	rep, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if failures := rep.gateFailures(); len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "loadgen: GATE FAILED:", f)
		}
		os.Exit(1)
	}
}

// config is the parsed flag set.
type config struct {
	url            string
	duration       time.Duration
	clients        int
	scenarios      []string
	faults         []faultSpec
	maxInflight    int
	queueDepth     int
	clientRPS      float64
	defaultTimeout time.Duration
	seed           int64
	maxShedRate    float64
	maxP99Wait     time.Duration
	jsonOut        bool

	// Restart-scenario knobs.
	storeDir        string
	restartRequests int
	minStoreHitRate float64
}

// faultSpec is one -fault entry: a site and the fault to arm there.
type faultSpec struct {
	site  string
	fault faultinject.Fault
}

// parseFaults parses "site=kind[:arg]" entries, comma-separated.
func parseFaults(s string) ([]faultSpec, error) {
	if s == "" {
		return nil, nil
	}
	var out []faultSpec
	for _, entry := range strings.Split(s, ",") {
		site, kind, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("fault %q: want site=kind", entry)
		}
		var f faultinject.Fault
		switch {
		case kind == "error":
			f.Err = faultinject.ErrInjected
		case kind == "panic":
			f.Panic = true
		case strings.HasPrefix(kind, "latency:"):
			d, err := time.ParseDuration(strings.TrimPrefix(kind, "latency:"))
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("fault %q: bad latency", entry)
			}
			f.Latency = d
		default:
			return nil, fmt.Errorf("fault %q: unknown kind (want error, panic or latency:<dur>)", entry)
		}
		out = append(out, faultSpec{site: site, fault: f})
	}
	return out, nil
}

// serverSide is what the post-run /metrics scrape contributed.
type serverSide struct {
	ShedQueueFull float64 `json:"shed_queue_full"`
	ShedOverQuota float64 `json:"shed_over_quota"`
	ShedDeadline  float64 `json:"shed_deadline"`
	Panics        float64 `json:"panics"`
	Degraded      float64 `json:"degraded"`
	QueueWaitP99  float64 `json:"queue_wait_p99_s"`
}

func (s serverSide) sheds() float64 { return s.ShedQueueFull + s.ShedOverQuota + s.ShedDeadline }

// report is the run summary, printed as text or JSON and gated on.
type report struct {
	DurationS   float64          `json:"duration_s"`
	Scenarios   []string         `json:"scenarios"`
	Attempts    uint64           `json:"attempts"`
	ByStatus    map[string]int64 `json:"by_status"`
	Disconnects uint64           `json:"deliberate_disconnects"`
	Errors      uint64           `json:"transport_errors"`
	ShedRate    float64          `json:"shed_rate"`
	Server      serverSide       `json:"server_metrics"`
	MetricsOK   bool             `json:"metrics_parse_ok"`
	// Restart carries the warm-start phase's results (restart scenario
	// only).
	Restart *restartReport `json:"restart,omitempty"`

	maxShedRate     float64
	maxP99Wait      time.Duration
	minStoreHitRate float64
}

// restartReport is the warm-start smoke summary: the same request list
// driven cold (fresh store) and warm (fresh server over the surviving
// store), with per-response byte comparison.
type restartReport struct {
	Requests int `json:"requests"`
	// ColdS/WarmS are the two passes' wall times; the warm pass answers
	// from disk, so on any real engine workload it is far faster.
	ColdS float64 `json:"cold_s"`
	WarmS float64 `json:"warm_s"`
	// WarmStoreHits counts warm responses carrying X-Explore-Store
	// (exact hits and superset-filtered answers); WarmStoreHitRate is
	// that over Requests.
	WarmStoreHits    int     `json:"warm_store_hits"`
	WarmStoreHitRate float64 `json:"warm_store_hit_rate"`
	// ByteMismatches counts warm responses whose bytes differ from the
	// cold pass — the invariant is zero, gated unconditionally.
	ByteMismatches int `json:"byte_mismatches"`
	// RecoveredArtifacts is the warm server's startup-scan count,
	// scraped from /metrics.
	RecoveredArtifacts float64 `json:"recovered_artifacts"`
}

func (r *report) gateFailures() []string {
	var fails []string
	if r.Errors > 0 {
		fails = append(fails, fmt.Sprintf("%d transport-level errors", r.Errors))
	}
	if !r.MetricsOK {
		fails = append(fails, "/metrics output failed to parse")
	}
	if r.maxShedRate < 1 && r.ShedRate > r.maxShedRate {
		fails = append(fails, fmt.Sprintf("shed rate %.3f > %.3f", r.ShedRate, r.maxShedRate))
	}
	if r.maxP99Wait > 0 && r.Server.QueueWaitP99 > r.maxP99Wait.Seconds() {
		fails = append(fails, fmt.Sprintf("queue-wait p99 %.3fs > %s", r.Server.QueueWaitP99, r.maxP99Wait))
	}
	if r.Restart != nil {
		if r.Restart.ByteMismatches > 0 {
			fails = append(fails, fmt.Sprintf("%d warm responses differ from the cold pass byte for byte", r.Restart.ByteMismatches))
		}
		if r.minStoreHitRate > 0 && r.Restart.WarmStoreHitRate < r.minStoreHitRate {
			fails = append(fails, fmt.Sprintf("warm store-hit rate %.3f < %.3f", r.Restart.WarmStoreHitRate, r.minStoreHitRate))
		}
	}
	return fails
}

func run(args []string, out io.Writer) (*report, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.url, "url", "", "target server base URL (empty = in-process server)")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "how long to drive traffic")
	fs.IntVar(&cfg.clients, "clients", 8, "concurrent request loops")
	scen := fs.String("scenario", "hot,cold,disconnect,burst", "comma-separated scenarios")
	faults := fs.String("fault", "", "arm fault sites before the run: site=error|panic|latency:<dur>, comma-separated (in-process only)")
	fs.IntVar(&cfg.maxInflight, "max-inflight", 2, "in-process server: exploration slots")
	fs.IntVar(&cfg.queueDepth, "queue-depth", 0, "in-process server: admission queue bound (0 = 4×max-inflight)")
	fs.Float64Var(&cfg.clientRPS, "client-rps", 0, "in-process server: per-client quota refill rate")
	fs.DurationVar(&cfg.defaultTimeout, "default-timeout", 0, "in-process server: engine request deadline")
	fs.Int64Var(&cfg.seed, "seed", 1, "traffic-shape random seed")
	fs.Float64Var(&cfg.maxShedRate, "max-shed-rate", 1, "fail when sheds/attempts exceeds this (1 = no gate)")
	fs.DurationVar(&cfg.maxP99Wait, "max-p99-wait", 0, "fail when the queue-wait p99 exceeds this (0 = no gate)")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the report as JSON")
	fs.StringVar(&cfg.storeDir, "store-dir", "", "restart scenario: persistent store directory (empty = private temp dir)")
	fs.IntVar(&cfg.restartRequests, "restart-requests", 12, "restart scenario: deterministic request-list length")
	fs.Float64Var(&cfg.minStoreHitRate, "min-store-hit-rate", 0, "restart scenario: fail when the warm pass's store-hit rate is below this (0 = no gate)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	for _, s := range strings.Split(*scen, ",") {
		if s = strings.TrimSpace(s); s != "" {
			cfg.scenarios = append(cfg.scenarios, s)
		}
	}
	if len(cfg.scenarios) == 0 {
		return nil, fmt.Errorf("no scenarios selected")
	}
	for _, s := range cfg.scenarios {
		switch s {
		case "hot", "cold", "disconnect", "burst":
		case "restart":
			// The restart scenario owns both server generations, so it
			// cannot share a run with duration-driven traffic or target a
			// remote server it cannot restart.
			if len(cfg.scenarios) != 1 {
				return nil, fmt.Errorf("scenario restart must be the sole scenario")
			}
			if cfg.url != "" {
				return nil, fmt.Errorf("scenario restart requires the in-process server (-url unsupported)")
			}
			if cfg.restartRequests < 1 {
				return nil, fmt.Errorf("-restart-requests must be positive, got %d", cfg.restartRequests)
			}
		default:
			return nil, fmt.Errorf("unknown scenario %q (want hot, cold, disconnect, burst or restart)", s)
		}
	}
	var err error
	if cfg.faults, err = parseFaults(*faults); err != nil {
		return nil, err
	}
	if len(cfg.faults) > 0 && cfg.url != "" {
		return nil, fmt.Errorf("-fault requires the in-process server (faults arm this process, not a remote one)")
	}

	for _, f := range cfg.faults {
		defer faultinject.Enable(f.site, f.fault)()
	}

	var rep *report
	if cfg.scenarios[0] == "restart" {
		if rep, err = driveRestart(cfg); err != nil {
			return nil, err
		}
	} else {
		base := cfg.url
		if base == "" {
			srv := httptest.NewServer(skyline.NewServerWith(catalog.Synthetic(8, 16, 16), skyline.Options{
				Cache:          core.NewCache(),
				MaxInflight:    cfg.maxInflight,
				QueueDepth:     cfg.queueDepth,
				ClientRPS:      cfg.clientRPS,
				DefaultTimeout: cfg.defaultTimeout,
			}))
			defer srv.Close()
			base = srv.URL
		}
		rep = drive(cfg, base)
	}
	rep.minStoreHitRate = cfg.minStoreHitRate
	rep.maxShedRate = cfg.maxShedRate
	rep.maxP99Wait = cfg.maxP99Wait

	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return nil, err
		}
	} else {
		printReport(out, rep)
	}
	return rep, nil
}

// drive runs the scenario loops for the configured duration, then
// scrapes /metrics.
func drive(cfg config, base string) *report {
	rep := &report{Scenarios: cfg.scenarios, ByStatus: map[string]int64{}}
	var (
		mu          sync.Mutex
		byStatus    = map[int]int64{}
		attempts    atomic.Uint64
		disconnects atomic.Uint64
		errs        atomic.Uint64
	)
	client := &http.Client{Timeout: 30 * time.Second}
	record := func(code int) {
		mu.Lock()
		byStatus[code]++
		mu.Unlock()
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
			for i := 0; ctx.Err() == nil; i++ {
				attempts.Add(1)
				switch cfg.scenarios[i%len(cfg.scenarios)] {
				case "hot":
					// A small hot catalog: repeats hit the analysis cache.
					n := rng.Intn(4)
					u := fmt.Sprintf("%s/api/analyze?uav=synth-uav-%03d&compute=synth-soc-%03d&algorithm=synth-net-%03d", base, n, n, n)
					doGet(ctx, client, u, "", record, &errs)
				case "cold":
					// Distinct constraint values defeat repetition and run
					// the engine; a short top-K bounds each response.
					u := fmt.Sprintf("%s/explore?top=3&min_velocity_ms=%.4f", base, rng.Float64()*2)
					doGet(ctx, client, u, "", record, &errs)
				case "disconnect":
					// Open an unbounded stream and walk away mid-body.
					disconnects.Add(1)
					dctx, dcancel := context.WithCancel(ctx)
					req, _ := http.NewRequestWithContext(dctx, http.MethodGet, base+"/explore", nil)
					resp, err := client.Do(req)
					if err != nil {
						dcancel()
						if ctx.Err() == nil {
							errs.Add(1)
						}
						continue
					}
					buf := make([]byte, 256)
					resp.Body.Read(buf) // first bytes, then vanish
					record(resp.StatusCode)
					dcancel()
					resp.Body.Close()
				case "burst":
					// One key fires a tight burst — the quota target.
					u := fmt.Sprintf("%s/api/analyze?uav=synth-uav-000&compute=synth-soc-001&algorithm=synth-net-%03d", base, rng.Intn(8))
					doGet(ctx, client, u, "burst-key", record, &errs)
				}
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	rep.DurationS = time.Since(start).Seconds()
	rep.Attempts = attempts.Load()
	rep.Disconnects = disconnects.Load()
	rep.Errors = errs.Load()
	for code, n := range byStatus {
		rep.ByStatus[strconv.Itoa(code)] = n
	}

	// Scrape and re-parse /metrics: the exposition format is part of
	// the server's contract, so a parse failure fails the run.
	samples, err := scrapeMetrics(client, base+"/metrics")
	if err == nil {
		rep.MetricsOK = true
		rep.Server = serverSide{
			ShedQueueFull: samples[`skyline_shed_total{reason="queue_full"}`],
			ShedOverQuota: samples[`skyline_shed_total{reason="over_quota"}`],
			ShedDeadline:  samples[`skyline_shed_total{reason="deadline"}`],
			Panics:        samples["skyline_panics_total"],
			Degraded:      samples["skyline_degraded_total"],
			QueueWaitP99:  samples[`skyline_queue_wait_seconds{quantile="0.99"}`],
		}
	}
	if rep.Attempts > 0 {
		rep.ShedRate = rep.Server.sheds() / float64(rep.Attempts)
	}
	return rep
}

// restartURLs builds the restart scenario's deterministic request
// list: a rotation of streaming, top-K and Pareto explorations plus
// grid renders, each over a small named slice of the synthetic catalog
// (the synthetic component names are spelled out because the preset
// defaults do not exist there). The list depends only on n, so the
// cold and warm passes replay identical requests.
func restartURLs(n int) []string {
	urls := make([]string, 0, n)
	for i := 0; len(urls) < n; i++ {
		uav := fmt.Sprintf("synth-uav-%03d", i%8)
		soc := fmt.Sprintf("synth-soc-%03d", i%16)
		net := fmt.Sprintf("synth-net-%03d", i%16)
		space := fmt.Sprintf("uav=%s&compute=%s", uav, soc)
		switch i % 4 {
		case 0:
			urls = append(urls, "/explore?"+space) // streaming NDJSON
		case 1:
			urls = append(urls, "/explore?"+space+"&top=5")
		case 2:
			urls = append(urls, "/explore?"+space+"&pareto=velocity,power")
		case 3:
			urls = append(urls, fmt.Sprintf("/grid.svg?uav=%s&compute=%s&algorithm=%s&x=payload&y=range&xlo=0&xhi=300&ylo=4&yhi=20&nx=6&ny=5", uav, soc, net))
		}
	}
	return urls
}

// driveRestart runs the warm-start smoke: the request list against a
// store-backed server (cold), then — after tearing that server down —
// against a fresh server over the same store directory (warm), with
// every response compared byte for byte via its digest.
func driveRestart(cfg config) (*report, error) {
	dir := cfg.storeDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "loadgen-store-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	// Each generation gets fresh in-process state — a new analysis
	// cache and a newly opened store — exactly like a process restart.
	newServer := func() (*httptest.Server, error) {
		st, err := store.Open(dir, 0)
		if err != nil {
			return nil, err
		}
		return httptest.NewServer(skyline.NewServerWith(catalog.Synthetic(8, 16, 16), skyline.Options{
			Cache:          core.NewCache(),
			Store:          st,
			MaxInflight:    cfg.maxInflight,
			QueueDepth:     cfg.queueDepth,
			DefaultTimeout: cfg.defaultTimeout,
		})), nil
	}
	urls := restartURLs(cfg.restartRequests)
	client := &http.Client{Timeout: 30 * time.Second}
	rep := &report{Scenarios: cfg.scenarios, ByStatus: map[string]int64{}}
	rr := &restartReport{Requests: len(urls)}
	rep.Restart = rr

	pass := func(base string, digests []string) (out []string, hits int, elapsed float64, err error) {
		start := time.Now()
		for i, u := range urls {
			resp, err := client.Get(base + u)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("GET %s: %w", u, err)
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return nil, 0, 0, fmt.Errorf("GET %s: %w", u, rerr)
			}
			rep.Attempts++
			rep.ByStatus[strconv.Itoa(resp.StatusCode)]++
			if resp.StatusCode != http.StatusOK {
				rep.Errors++
				continue
			}
			if resp.Header.Get("X-Explore-Store") != "" {
				hits++
			}
			sum := sha256.Sum256(body)
			d := hex.EncodeToString(sum[:])
			out = append(out, d)
			if digests != nil && i < len(digests) && digests[i] != d {
				rr.ByteMismatches++
			}
		}
		return out, hits, time.Since(start).Seconds(), nil
	}

	cold, err := newServer()
	if err != nil {
		return nil, err
	}
	digests, _, coldS, err := pass(cold.URL, nil)
	cold.Close()
	if err != nil {
		return nil, err
	}
	rr.ColdS = coldS

	warm, err := newServer()
	if err != nil {
		return nil, err
	}
	defer warm.Close()
	_, hits, warmS, err := pass(warm.URL, digests)
	if err != nil {
		return nil, err
	}
	rr.WarmS = warmS
	rr.WarmStoreHits = hits
	rr.WarmStoreHitRate = float64(hits) / float64(len(urls))
	rep.DurationS = coldS + warmS

	samples, err := scrapeMetrics(client, warm.URL+"/metrics")
	if err == nil {
		rep.MetricsOK = true
		rr.RecoveredArtifacts = samples["skyline_store_recovered_artifacts"]
	}
	return rep, nil
}

func doGet(ctx context.Context, client *http.Client, url, apiKey string, record func(int), errs *atomic.Uint64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		errs.Add(1)
		return
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		// Hitting the run deadline mid-request is the harness stopping,
		// not the server failing.
		if ctx.Err() == nil {
			errs.Add(1)
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	record(resp.StatusCode)
}

// scrapeMetrics fetches and parses a Prometheus text page into
// "name{labels}" → value samples, rejecting malformed lines.
func scrapeMetrics(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseMetrics(string(body))
}

// parseMetrics parses the exposition text: "# ..." comments and
// "name{labels} value" samples; anything else is an error.
func parseMetrics(text string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			return nil, fmt.Errorf("malformed metrics line %q", line)
		}
		name, val := line[:idx], line[idx+1:]
		if strings.Contains(name, " ") || strings.Contains(name, "\t") {
			return nil, fmt.Errorf("metrics line %q: malformed series name", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %q: bad value: %v", line, err)
		}
		out[name] = v
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no samples in metrics output")
	}
	return out, nil
}

func printReport(w io.Writer, r *report) {
	fmt.Fprintf(w, "loadgen: %d attempts over %.1fs (%s)\n", r.Attempts, r.DurationS, strings.Join(r.Scenarios, ","))
	for code, n := range r.ByStatus {
		fmt.Fprintf(w, "  status %s: %d\n", code, n)
	}
	fmt.Fprintf(w, "  deliberate disconnects: %d, transport errors: %d\n", r.Disconnects, r.Errors)
	fmt.Fprintf(w, "  server sheds: queue_full=%.0f over_quota=%.0f deadline=%.0f (rate %.3f)\n",
		r.Server.ShedQueueFull, r.Server.ShedOverQuota, r.Server.ShedDeadline, r.ShedRate)
	fmt.Fprintf(w, "  queue-wait p99: %.4fs, panics: %.0f, degraded: %.0f, metrics parse: %v\n",
		r.Server.QueueWaitP99, r.Server.Panics, r.Server.Degraded, r.MetricsOK)
	if rr := r.Restart; rr != nil {
		fmt.Fprintf(w, "  restart: %d requests, cold %.2fs -> warm %.2fs\n", rr.Requests, rr.ColdS, rr.WarmS)
		fmt.Fprintf(w, "  restart: warm store hits %d/%d (rate %.3f), byte mismatches %d, recovered artifacts %.0f\n",
			rr.WarmStoreHits, rr.Requests, rr.WarmStoreHitRate, rr.ByteMismatches, rr.RecoveredArtifacts)
	}
}
