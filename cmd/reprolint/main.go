// Command reprolint runs the project's own static analyzers (see
// internal/lint and docs/INVARIANTS.md) over the module and exits
// non-zero when any unsuppressed finding remains. CI runs it as a
// gating job next to go vet:
//
//	reprolint ./...                 # whole module, all analyzers
//	reprolint -list                 # describe the analyzers
//	reprolint -run ctxflow,detorder # a subset
//	reprolint -vet=false ./...      # skip the stock go vet pass
//	reprolint -json - ./...         # machine-readable findings on stdout
//	reprolint -json lint.json ./... # text output plus a JSON report file
//
// Suppressed findings (justified //reprolint annotations) are counted
// in the summary but never gate; -show-suppressed prints each one.
// Directive-staleness hygiene only runs with the full suite, so a
// -run subset prints a one-line notice that it was skipped — a clean
// subset run must not be mistaken for a clean full run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"repro/internal/lint"
)

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"`
	Line          int    `json:"line"`
	Column        int    `json:"column"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed,omitempty"`
	Justification string `json:"justification,omitempty"`
}

// jsonReport is the -json document: the same data the text output
// carries, structured for CI annotation tooling.
type jsonReport struct {
	Packages        int              `json:"packages"`
	Findings        []jsonDiagnostic `json:"findings"`
	Suppressed      []jsonDiagnostic `json:"suppressed"`
	HygieneSkipped  bool             `json:"hygiene_skipped,omitempty"`
	AnalyzersRun    []string         `json:"analyzers_run"`
	FindingCount    int              `json:"finding_count"`
	SuppressedCount int              `json:"suppressed_count"`
}

func toJSONDiag(d lint.Diagnostic) jsonDiagnostic {
	return jsonDiagnostic{
		Analyzer:      d.Analyzer,
		File:          d.Pos.Filename,
		Line:          d.Pos.Line,
		Column:        d.Pos.Column,
		Message:       d.Message,
		Suppressed:    d.Suppressed,
		Justification: d.Justification,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to analyze")
	vet := fs.Bool("vet", true, "also run the stock go vet passes over the module")
	list := fs.Bool("list", false, "list the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	showSuppressed := fs.Bool("show-suppressed", false, "print suppressed findings with their justifications")
	jsonOut := fs.String("json", "", `write a machine-readable report: "-" replaces text output on stdout, a path writes the file alongside the text output`)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, pat := range fs.Args() {
		// The only supported pattern is the whole module; accepting the
		// conventional spelling keeps CI invocations idiomatic.
		if pat != "./..." {
			fmt.Fprintf(stderr, "reprolint: unsupported pattern %q (only ./... is understood; use -dir for another module)\n", pat)
			return 2
		}
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%s\n\t%s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n\t"))
		}
		return 0
	}

	analyzers := lint.All()
	if *runNames != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*runNames, ",")...)
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	}

	exit := 0
	if *vet {
		// go vet owns the stock passes; reprolint layers the
		// project-specific ones on top rather than reimplementing them.
		cmd := exec.Command("go", "vet", "./...")
		cmd.Dir = *dir
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(stderr, "reprolint: go vet:", err)
			exit = 1
		}
	}

	pkgs, err := lint.Load(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	res := lint.Run(pkgs, analyzers)
	subset := len(analyzers) != len(lint.All())

	if *jsonOut != "" {
		report := jsonReport{
			Packages:        len(pkgs),
			Findings:        make([]jsonDiagnostic, 0, len(res.Findings)),
			Suppressed:      make([]jsonDiagnostic, 0, len(res.Suppressed)),
			HygieneSkipped:  subset,
			FindingCount:    len(res.Findings),
			SuppressedCount: len(res.Suppressed),
		}
		for _, a := range analyzers {
			report.AnalyzersRun = append(report.AnalyzersRun, a.Name)
		}
		for _, d := range res.Findings {
			report.Findings = append(report.Findings, toJSONDiag(d))
		}
		for _, d := range res.Suppressed {
			report.Suppressed = append(report.Suppressed, toJSONDiag(d))
		}
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "reprolint: encode report:", err)
			return 2
		}
		raw = append(raw, '\n')
		if *jsonOut == "-" {
			// JSON replaces the text protocol on stdout.
			if _, err := stdout.Write(raw); err != nil {
				fmt.Fprintln(stderr, "reprolint:", err)
				return 2
			}
			if len(res.Findings) > 0 {
				exit = 1
			}
			return exit
		}
		if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	}

	for _, d := range res.Findings {
		fmt.Fprintln(stdout, d)
	}
	if *showSuppressed {
		for _, d := range res.Suppressed {
			fmt.Fprintln(stdout, d)
		}
	}
	if subset {
		fmt.Fprintln(stdout, "reprolint: note: suppression hygiene skipped (-run subset); stale-directive findings only appear on a full-suite run")
	}
	fmt.Fprintf(stdout, "reprolint: %d package(s), %d finding(s), %d justified suppression(s)\n",
		len(pkgs), len(res.Findings), len(res.Suppressed))
	if len(res.Findings) > 0 {
		byAnalyzer := map[string]int{}
		for _, d := range res.Findings {
			byAnalyzer[d.Analyzer]++
		}
		names := make([]string, 0, len(byAnalyzer))
		for n := range byAnalyzer {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(stdout, "reprolint: %4d %s\n", byAnalyzer[n], n)
		}
		exit = 1
	}
	return exit
}
