// Command reprolint runs the project's own static analyzers (see
// internal/lint and docs/INVARIANTS.md) over the module and exits
// non-zero when any unsuppressed finding remains. CI runs it as a
// gating job next to go vet:
//
//	reprolint ./...                 # whole module, all analyzers
//	reprolint -list                 # describe the analyzers
//	reprolint -run ctxflow,detorder # a subset
//	reprolint -vet=false ./...      # skip the stock go vet pass
//
// Suppressed findings (justified //reprolint annotations) are counted
// in the summary but never gate; -show-suppressed prints each one.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to analyze")
	vet := fs.Bool("vet", true, "also run the stock go vet passes over the module")
	list := fs.Bool("list", false, "list the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	showSuppressed := fs.Bool("show-suppressed", false, "print suppressed findings with their justifications")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, pat := range fs.Args() {
		// The only supported pattern is the whole module; accepting the
		// conventional spelling keeps CI invocations idiomatic.
		if pat != "./..." {
			fmt.Fprintf(stderr, "reprolint: unsupported pattern %q (only ./... is understood; use -dir for another module)\n", pat)
			return 2
		}
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%s\n\t%s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n\t"))
		}
		return 0
	}

	analyzers := lint.All()
	if *runNames != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*runNames, ",")...)
		if err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 2
		}
	}

	exit := 0
	if *vet {
		// go vet owns the stock passes; reprolint layers the
		// project-specific ones on top rather than reimplementing them.
		cmd := exec.Command("go", "vet", "./...")
		cmd.Dir = *dir
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(stderr, "reprolint: go vet:", err)
			exit = 1
		}
	}

	pkgs, err := lint.Load(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 2
	}
	res := lint.Run(pkgs, analyzers)
	for _, d := range res.Findings {
		fmt.Fprintln(stdout, d)
	}
	if *showSuppressed {
		for _, d := range res.Suppressed {
			fmt.Fprintln(stdout, d)
		}
	}
	fmt.Fprintf(stdout, "reprolint: %d package(s), %d finding(s), %d justified suppression(s)\n",
		len(pkgs), len(res.Findings), len(res.Suppressed))
	if len(res.Findings) > 0 {
		byAnalyzer := map[string]int{}
		for _, d := range res.Findings {
			byAnalyzer[d.Analyzer]++
		}
		names := make([]string, 0, len(byAnalyzer))
		for n := range byAnalyzer {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(stdout, "reprolint: %4d %s\n", byAnalyzer[n], n)
		}
		exit = 1
	}
	return exit
}
