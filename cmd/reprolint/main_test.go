package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtures maps each analyzer's dirty fixture module to the tag its
// diagnostics must carry.
var fixtures = map[string]string{
	"ctxflow":        "[ctxflow]",
	"detorder":       "[detorder]",
	"rawfloatjson":   "[rawfloatjson]",
	"hotpathalloc":   "[hotpathalloc]",
	"atomicmix":      "[atomicmix]",
	"lockorder":      "[lockorder]",
	"goroleak":       "[goroleak]",
	"chandiscipline": "[chandiscipline]",
	"respwrite":      "[respwrite]",
	"factflow":       "[lockorder]",
	"directives":     "unknown directive",
}

func TestDirtyFixturesGate(t *testing.T) {
	for mod, tag := range fixtures {
		t.Run(mod, func(t *testing.T) {
			dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", mod)
			var out, errb bytes.Buffer
			code := run([]string{"-vet=false", "-dir", dir, "./..."}, &out, &errb)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
			}
			if !strings.Contains(out.String(), tag) {
				t.Fatalf("output lacks %q:\n%s", tag, out.String())
			}
		})
	}
}

func TestCleanFixturePasses(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "goodrepro")
	var out, errb bytes.Buffer
	code := run([]string{"-vet=false", "-dir", dir, "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Fatalf("summary missing from output:\n%s", out.String())
	}
}

func TestListDescribesEveryAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"atomicmix", "chandiscipline", "ctxflow", "detorder", "goroleak", "hotpathalloc", "lockorder", "rawfloatjson", "respwrite"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output lacks %q:\n%s", name, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-vet=false", "pkg/single"}, &out, &errb); code != 2 {
		t.Fatalf("unsupported pattern: exit = %d, want 2", code)
	}
	if code := run([]string{"-vet=false", "-run", "nosuch", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2", code)
	}
}

func TestSubsetRunsOnlyNamedAnalyzers(t *testing.T) {
	// The ctxflow fixture is dirty for ctxflow only; running just
	// detorder over it must pass (hygiene is a whole-suite concern, and
	// the suite knows single-analyzer runs skip it... but the CLI always
	// runs with hygiene on, so aim the subset at a module whose only
	// directives target the selected analyzer).
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "atomicmix")
	var out, errb bytes.Buffer
	code := run([]string{"-vet=false", "-dir", dir, "-run", "atomicmix", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "[ctxflow]") {
		t.Fatalf("subset run leaked another analyzer:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "suppression hygiene skipped") {
		t.Fatalf("subset run must announce that hygiene was skipped:\n%s", out.String())
	}
}

func TestFullRunHasNoHygieneNotice(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "goodrepro")
	var out, errb bytes.Buffer
	if code := run([]string{"-vet=false", "-dir", dir, "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "suppression hygiene skipped") {
		t.Fatalf("full run must not claim hygiene was skipped:\n%s", out.String())
	}
}

func TestJSONStdout(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "factflow")
	var out, errb bytes.Buffer
	code := run([]string{"-vet=false", "-dir", dir, "-json", "-", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (dirty fixture gates in JSON mode too)\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	var report jsonReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if report.FindingCount != 1 || len(report.Findings) != 1 {
		t.Fatalf("report findings = %d/%d, want 1", report.FindingCount, len(report.Findings))
	}
	f := report.Findings[0]
	if f.Analyzer != "lockorder" || f.Line == 0 || !strings.HasSuffix(f.File, "flow.go") {
		t.Fatalf("finding lacks machine-usable coordinates: %+v", f)
	}
	if strings.Contains(out.String(), "finding(s)") {
		t.Fatalf("-json - must replace the text protocol on stdout:\n%s", out.String())
	}
}

func TestJSONFileKeepsTextOutput(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "goodrepro")
	path := filepath.Join(t.TempDir(), "lint.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-vet=false", "-dir", dir, "-json", path, "./..."}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Fatalf("text summary missing when -json writes to a file:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report jsonReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report file is not JSON: %v", err)
	}
	if report.FindingCount != 0 || len(report.AnalyzersRun) == 0 {
		t.Fatalf("unexpected report: %+v", report)
	}
}
