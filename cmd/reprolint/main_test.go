package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// fixtures maps each analyzer's dirty fixture module to the tag its
// diagnostics must carry.
var fixtures = map[string]string{
	"ctxflow":      "[ctxflow]",
	"detorder":     "[detorder]",
	"rawfloatjson": "[rawfloatjson]",
	"hotpathalloc": "[hotpathalloc]",
	"atomicmix":    "[atomicmix]",
	"directives":   "unknown directive",
}

func TestDirtyFixturesGate(t *testing.T) {
	for mod, tag := range fixtures {
		t.Run(mod, func(t *testing.T) {
			dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", mod)
			var out, errb bytes.Buffer
			code := run([]string{"-vet=false", "-dir", dir, "./..."}, &out, &errb)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
			}
			if !strings.Contains(out.String(), tag) {
				t.Fatalf("output lacks %q:\n%s", tag, out.String())
			}
		})
	}
}

func TestCleanFixturePasses(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "goodrepro")
	var out, errb bytes.Buffer
	code := run([]string{"-vet=false", "-dir", dir, "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Fatalf("summary missing from output:\n%s", out.String())
	}
}

func TestListDescribesEveryAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"atomicmix", "ctxflow", "detorder", "hotpathalloc", "rawfloatjson"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output lacks %q:\n%s", name, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-vet=false", "pkg/single"}, &out, &errb); code != 2 {
		t.Fatalf("unsupported pattern: exit = %d, want 2", code)
	}
	if code := run([]string{"-vet=false", "-run", "nosuch", "./..."}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer: exit = %d, want 2", code)
	}
}

func TestSubsetRunsOnlyNamedAnalyzers(t *testing.T) {
	// The ctxflow fixture is dirty for ctxflow only; running just
	// detorder over it must pass (hygiene is a whole-suite concern, and
	// the suite knows single-analyzer runs skip it... but the CLI always
	// runs with hygiene on, so aim the subset at a module whose only
	// directives target the selected analyzer).
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "atomicmix")
	var out, errb bytes.Buffer
	code := run([]string{"-vet=false", "-dir", dir, "-run", "atomicmix", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "[ctxflow]") {
		t.Fatalf("subset run leaked another analyzer:\n%s", out.String())
	}
}
