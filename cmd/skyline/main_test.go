package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/skyline"
)

// healthz GETs /healthz on a setup-built server and decodes it.
func healthz(t *testing.T, args []string) skyline.HealthJSON {
	t.Helper()
	srv, addr, err := setup(args)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		t.Fatal("empty listen address")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out skyline.HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSetupDefaultLimits(t *testing.T) {
	h := healthz(t, nil)
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if want := 4 * runtime.GOMAXPROCS(0); h.MaxInflight != want {
		t.Errorf("max_inflight = %d, want %d", h.MaxInflight, want)
	}
	if want := runtime.GOMAXPROCS(0); h.MaxWorkersPerRequest != want {
		t.Errorf("max_workers_per_request = %d, want %d", h.MaxWorkersPerRequest, want)
	}
}

func TestSetupFlagLimits(t *testing.T) {
	h := healthz(t, []string{
		"-max-inflight", "3", "-max-workers-per-request", "1",
		"-cache-entries", "512",
	})
	if h.MaxInflight != 3 {
		t.Errorf("max_inflight = %d, want 3", h.MaxInflight)
	}
	if h.MaxWorkersPerRequest != 1 {
		t.Errorf("max_workers_per_request = %d, want 1", h.MaxWorkersPerRequest)
	}
	// -cache-entries resized the process-wide cache the server shares.
	if h.Cache.Capacity != 512 {
		t.Errorf("cache capacity = %d, want 512", h.Cache.Capacity)
	}
}

func TestSetupBadFlag(t *testing.T) {
	if _, _, err := setup([]string{"-catalog", "/nonexistent/catalog.json"}); err == nil {
		t.Fatal("missing catalog file accepted")
	}
}

func TestSetupStoreDisabledByDefault(t *testing.T) {
	if h := healthz(t, nil); h.Store != nil {
		t.Errorf("store gauges present without -store-dir: %+v", h.Store)
	}
}

func TestSetupStoreFlags(t *testing.T) {
	dir := t.TempDir()
	h := healthz(t, []string{"-store-dir", dir, "-store-limit-bytes", "4096"})
	if h.Store == nil {
		t.Fatal("-store-dir set but /healthz has no store section")
	}
	if h.Store.LimitBytes != 4096 {
		t.Errorf("store limit = %d, want 4096", h.Store.LimitBytes)
	}
	// Open created the store layout on disk.
	for _, sub := range []string{"objects", "tmp", "quarantine"} {
		if _, err := os.Stat(filepath.Join(dir, sub)); err != nil {
			t.Errorf("store layout missing %s/: %v", sub, err)
		}
	}
}

func TestSetupStoreBadDir(t *testing.T) {
	// A store rooted where a file already sits must fail setup loudly,
	// not silently run storeless.
	path := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := setup([]string{"-store-dir", path}); err == nil {
		t.Fatal("unusable -store-dir accepted")
	}
}
