// Command skyline serves the interactive web tool for the F-1 model —
// the reproduction of the paper's Skyline tool (§V). Open the printed
// address, pick a UAV/compute/algorithm (or enter custom Table II
// knobs) and inspect the resulting roofline, bounds and optimization
// tips.
//
// Usage:
//
//	skyline [-addr :8080] [-catalog file.json]
//	        [-cache-entries 65536] [-max-inflight 4×GOMAXPROCS]
//	        [-max-workers-per-request GOMAXPROCS]
//
// -cache-entries bounds the process-wide analysis cache; -max-inflight
// caps the concurrently running exploration requests (excess requests
// get 429 + Retry-After; 0 disables the limit); and
// -max-workers-per-request clamps one request's workers= knob so a
// single client cannot monopolize the cores. /healthz reports the cache
// and admission gauges as JSON.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/skyline"
)

func main() {
	srv, addr, err := setup(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Skyline listening on %s\n", addr)
	log.Fatal(http.ListenAndServe(addr, srv))
}

// setup parses the flags, sizes the process-wide cache and builds the
// configured server — everything main does short of listening.
func setup(args []string) (*skyline.Server, string, error) {
	fs := flag.NewFlagSet("skyline", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	catalogPath := fs.String("catalog", "", "optional catalog JSON (default: built-in paper catalog)")
	cacheEntries := fs.Int("cache-entries", core.DefaultCacheLimit,
		"bound on the process-wide analysis cache (entries)")
	maxInflight := fs.Int("max-inflight", 4*runtime.GOMAXPROCS(0),
		"concurrent exploration requests before /explore answers 429 (0 = unlimited)")
	maxWorkers := fs.Int("max-workers-per-request", 0,
		"cap on one exploration request's workers= knob (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}

	cat := catalog.Default()
	if *catalogPath != "" {
		f, err := os.Open(*catalogPath)
		if err != nil {
			return nil, "", fmt.Errorf("opening catalog: %w", err)
		}
		cat, err = catalog.Load(f)
		f.Close()
		if err != nil {
			return nil, "", fmt.Errorf("loading catalog: %w", err)
		}
	}
	if *cacheEntries != core.DefaultCacheLimit {
		core.SetSharedCacheLimit(*cacheEntries)
	}
	srv := skyline.NewServerWith(cat, skyline.Options{
		MaxInflight:          *maxInflight,
		MaxWorkersPerRequest: *maxWorkers,
	})
	return srv, *addr, nil
}
