// Command skyline serves the interactive web tool for the F-1 model —
// the reproduction of the paper's Skyline tool (§V). Open the printed
// address, pick a UAV/compute/algorithm (or enter custom Table II
// knobs) and inspect the resulting roofline, bounds and optimization
// tips.
//
// Usage:
//
//	skyline [-addr :8080] [-catalog file.json]
//	        [-cache-entries 65536] [-max-inflight 4×GOMAXPROCS]
//	        [-queue-depth 4×max-inflight] [-default-timeout 0]
//	        [-client-rps 0] [-max-workers-per-request GOMAXPROCS]
//	        [-store-dir dir] [-store-limit-bytes 1GiB]
//
// -cache-entries bounds the process-wide analysis cache.
//
// -store-dir enables the crash-safe persistent result store (off when
// unset): completed /explore and /grid.svg responses are spilled as
// content-addressed artifacts and repeat requests — including warm
// restarts of the server — are answered from disk instead of the
// engine. -store-limit-bytes bounds the artifact bytes (oldest
// evicted first; 0 = unbounded). Corrupt artifacts are quarantined
// and recomputed; persistent store I/O failure degrades the server to
// recompute-only. See docs/PERSISTENCE.md.
//
// Admission control: -max-inflight caps the concurrently running
// exploration requests (0 disables the limit); excess requests wait in
// a bounded FIFO queue of -queue-depth entries (0 = 4×max-inflight,
// negative = no queue, i.e. shed instantly) until a slot frees or
// their deadline expires. A full queue answers 429 with a Retry-After
// derived from the observed queue depth and service times; an expired
// deadline answers 503. -default-timeout bounds each engine-driven
// request's wall time (0 = none) and callers may ask for less with a
// timeout= query knob ("500ms", "2s", or bare seconds), clamped to the
// server default. -client-rps meters each client (X-API-Key header,
// else remote address) with a token bucket; over-quota clients are
// shed first under saturation. -max-workers-per-request clamps one
// request's workers= knob so a single client cannot monopolize the
// cores.
//
// Under sustained saturation (queue past its high-water mark) an
// unbounded /explore is downgraded to a capped top-K response, flagged
// via the X-Explore-Degraded header.
//
// /healthz reports the cache, admission and store gauges as JSON;
// /metrics exports them in the Prometheus text format (queue
// depth/wait, per-endpoint latency quantiles, shed/panic counters,
// store artifact/hit/quarantine/degraded series).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/skyline"
	"repro/internal/store"
)

func main() {
	srv, addr, err := setup(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Skyline listening on %s\n", addr)
	log.Fatal(http.ListenAndServe(addr, srv))
}

// setup parses the flags, sizes the process-wide cache and builds the
// configured server — everything main does short of listening.
func setup(args []string) (*skyline.Server, string, error) {
	fs := flag.NewFlagSet("skyline", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	catalogPath := fs.String("catalog", "", "optional catalog JSON (default: built-in paper catalog)")
	cacheEntries := fs.Int("cache-entries", core.DefaultCacheLimit,
		"bound on the process-wide analysis cache (entries)")
	maxInflight := fs.Int("max-inflight", 4*runtime.GOMAXPROCS(0),
		"concurrent exploration requests before new ones queue (0 = unlimited)")
	queueDepth := fs.Int("queue-depth", 0,
		"admission wait-queue bound; excess requests get 429 (0 = 4×max-inflight, negative = no queue)")
	defaultTimeout := fs.Duration("default-timeout", 0,
		"deadline for engine-driven requests and clamp on their timeout= knob (0 = none)")
	clientRPS := fs.Float64("client-rps", 0,
		"per-client token-bucket refill rate, keyed by X-API-Key or remote address (0 = no quotas)")
	maxWorkers := fs.Int("max-workers-per-request", 0,
		"cap on one exploration request's workers= knob (0 = GOMAXPROCS)")
	storeDir := fs.String("store-dir", "",
		"directory for the persistent result store (empty = store disabled)")
	storeLimit := fs.Int64("store-limit-bytes", 1<<30,
		"byte bound on stored artifacts, oldest evicted first (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}

	cat := catalog.Default()
	if *catalogPath != "" {
		f, err := os.Open(*catalogPath)
		if err != nil {
			return nil, "", fmt.Errorf("opening catalog: %w", err)
		}
		cat, err = catalog.Load(f)
		f.Close()
		if err != nil {
			return nil, "", fmt.Errorf("loading catalog: %w", err)
		}
	}
	if *cacheEntries != core.DefaultCacheLimit {
		core.SetSharedCacheLimit(*cacheEntries)
	}
	opt := skyline.Options{
		MaxInflight:          *maxInflight,
		QueueDepth:           *queueDepth,
		DefaultTimeout:       *defaultTimeout,
		ClientRPS:            *clientRPS,
		MaxWorkersPerRequest: *maxWorkers,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *storeLimit)
		if err != nil {
			return nil, "", fmt.Errorf("opening result store: %w", err)
		}
		opt.Store = st
	}
	return skyline.NewServerWith(cat, opt), *addr, nil
}
