// Command skyline serves the interactive web tool for the F-1 model —
// the reproduction of the paper's Skyline tool (§V). Open the printed
// address, pick a UAV/compute/algorithm (or enter custom Table II
// knobs) and inspect the resulting roofline, bounds and optimization
// tips.
//
// Usage:
//
//	skyline [-addr :8080] [-catalog file.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/catalog"
	"repro/internal/skyline"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	catalogPath := flag.String("catalog", "", "optional catalog JSON (default: built-in paper catalog)")
	flag.Parse()

	cat := catalog.Default()
	if *catalogPath != "" {
		f, err := os.Open(*catalogPath)
		if err != nil {
			log.Fatalf("opening catalog: %v", err)
		}
		cat, err = catalog.Load(f)
		f.Close()
		if err != nil {
			log.Fatalf("loading catalog: %v", err)
		}
	}
	fmt.Printf("Skyline listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, skyline.NewServer(cat)))
}
