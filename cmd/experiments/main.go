// Command experiments regenerates the paper's tables and figures. Each
// experiment's tables print to stdout and, with -out, land in a results
// directory together with SVG renderings of the figures.
//
// Usage:
//
//	experiments                 # run everything, print tables
//	experiments -id fig11       # one experiment
//	experiments -out results/   # also write .txt and .svg files
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	// Ctrl-C cancels the context, which stops in-flight explorations
	// between candidates instead of draining them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	id := fs.String("id", "", "run a single experiment (default: all)")
	out := fs.String("out", "", "directory to write .txt tables and .svg figures")
	ascii := fs.Bool("ascii", false, "also render charts as ASCII on stdout")
	workers := fs.Int("workers", 0, "cap the cores used by the exploration/sweep engines (0 = all)")
	cacheStats := fs.Bool("cache-stats", false, "print the process-wide analysis cache statistics after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers > 0 {
		// The DSE engine sizes its worker pools from GOMAXPROCS.
		runtime.GOMAXPROCS(*workers)
	}

	var todo []experiments.Experiment
	if *id != "" {
		e, err := experiments.ByID(*id)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	} else {
		todo = experiments.All()
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	cat := catalog.Default()
	for _, e := range todo {
		res, err := e.Run(ctx, cat)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		text := res.Render()
		fmt.Fprint(stdout, text)
		if *ascii {
			for _, ch := range res.Charts {
				a, err := ch.ASCII(76, 18)
				if err != nil {
					return fmt.Errorf("%s: %w", e.ID, err)
				}
				fmt.Fprintln(stdout, a)
			}
			for _, hm := range res.Heatmaps {
				a, err := hm.ASCII(76, 18)
				if err != nil {
					return fmt.Errorf("%s: %w", e.ID, err)
				}
				fmt.Fprintln(stdout, a)
			}
		}
		if *out != "" {
			if err := os.WriteFile(filepath.Join(*out, e.ID+".txt"), []byte(text), 0o644); err != nil {
				return err
			}
			type svgRenderer interface{ SVG(io.Writer) error }
			var figures []svgRenderer
			for _, ch := range res.Charts {
				figures = append(figures, ch)
			}
			for _, hm := range res.Heatmaps {
				figures = append(figures, hm)
			}
			for i, fig := range figures {
				name := fmt.Sprintf("%s_%d.svg", e.ID, i)
				f, err := os.Create(filepath.Join(*out, name))
				if err != nil {
					return err
				}
				err = fig.SVG(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return err
				}
			}
		}
	}
	if *cacheStats {
		// The exploration-driven experiments share core.SharedCache
		// (the dse.Explorer default); the hit rate shows how much of the
		// run was memoized.
		st := core.SharedCache().Stats()
		fmt.Fprintf(stdout, "cache: %d/%d entries across %d shards, %d hits / %d misses (%.1f%% hit rate, %d coalesced), %d evictions\n",
			st.Entries, st.Capacity, st.Shards, st.Hits, st.Misses, 100*st.HitRate(), st.Coalesced, st.Evictions)
	}
	return nil
}
