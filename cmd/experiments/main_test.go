package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-id", "fig13"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig13") || !strings.Contains(out, "39") {
		t.Errorf("fig13 output incomplete: %s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-id", "fig99"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	if err := run(context.Background(), []string{"-id", "fig12", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "fig12.txt"))
	if err != nil {
		t.Fatalf("table file missing: %v", err)
	}
	if !strings.Contains(string(txt), "162") {
		t.Error("fig12 table content wrong")
	}
	svg, err := os.ReadFile(filepath.Join(dir, "fig12_0.svg"))
	if err != nil {
		t.Fatalf("SVG file missing: %v", err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("SVG content wrong")
	}
}

func TestRunASCIICharts(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-id", "fig5", "-ascii"}, &buf); err != nil {
		t.Fatal(err)
	}
	// The ASCII rendering includes the axis separator line.
	if !strings.Contains(buf.String(), "+---") {
		t.Error("ASCII chart missing")
	}
}

func TestRunCacheStats(t *testing.T) {
	var buf strings.Builder
	// table3 explores via a default dse.Explorer, which shares the
	// process-wide cache the flag reports on.
	if err := run(context.Background(), []string{"-id", "table3", "-cache-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cache: ") || !strings.Contains(buf.String(), "hit rate") {
		t.Errorf("cache stats line missing:\n%s", buf.String())
	}
	// Without the flag the line stays out of the report.
	buf.Reset()
	if err := run(context.Background(), []string{"-id", "table3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "cache: ") {
		t.Error("cache stats printed without -cache-stats")
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf strings.Builder
	if err := run(context.Background(), []string{"-nope"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunGridHeatmapArtifacts(t *testing.T) {
	dir := t.TempDir()
	var buf strings.Builder
	if err := run(context.Background(), []string{"-id", "ext-grid", "-out", dir, "-ascii"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The ASCII heatmap prints its value-range caption and the field.
	if !strings.Contains(out, "v_safe (m/s):") || !strings.Contains(out, "+---") {
		t.Errorf("ASCII heatmap missing:\n%s", out)
	}
	svg, err := os.ReadFile(filepath.Join(dir, "ext-grid_0.svg"))
	if err != nil {
		t.Fatalf("heatmap SVG missing: %v", err)
	}
	if !strings.Contains(string(svg), "<svg") || !strings.Contains(string(svg), "payload (g)") {
		t.Error("heatmap SVG content wrong")
	}
}
