// Command benchfmt converts the committed BENCH_dse.json record into Go
// benchmark output ("BenchmarkX 1 123 ns/op ...") so benchstat can
// compare a fresh `go test -bench` run against the checked-in baseline
// — the CI bench-regression job's input.
//
// Usage:
//
//	benchfmt [-f BENCH_dse.json] [-section current]
//
// The section flag picks which record to emit ("current" is the latest
// capture; "baseline" the pre-rework engine). Benchmarks are emitted in
// name order so the output is deterministic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// measurement is one benchmark record in BENCH_dse.json.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchfmt", flag.ContinueOnError)
	file := fs.String("f", "BENCH_dse.json", "benchmark record to convert")
	section := fs.String("section", "current", "record section to emit (current or baseline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	raw, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", *file, err)
	}
	sec, ok := doc[*section]
	if !ok {
		return fmt.Errorf("%s: no %q section", *file, *section)
	}
	var benches map[string]measurement
	if err := json.Unmarshal(sec, &benches); err != nil {
		return fmt.Errorf("%s: section %q: %w", *file, *section, err)
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := benches[name]
		// %g keeps the recorded precision: sub-microsecond records like
		// 188.3 ns/op must not round before benchstat sees them (B/op
		// and allocs/op are integral by construction).
		if _, err := fmt.Fprintf(stdout, "%s \t1\t%g ns/op\t%.0f B/op\t%.0f allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp); err != nil {
			return err
		}
	}
	return nil
}
