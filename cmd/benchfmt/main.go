// Command benchfmt converts the committed BENCH_dse.json record into Go
// benchmark output ("BenchmarkX 1 123 ns/op ...") so benchstat can
// compare a fresh `go test -bench` run against the checked-in baseline,
// and — with -check — gates a fresh run against that record directly.
//
// Usage:
//
//	benchfmt [-f BENCH_dse.json] [-section current]
//	benchfmt -check bench-new.txt [-max-ns-ratio 2.0]
//	         [-max-alloc-ratio 1.25] [-alloc-slack 8]
//	         [-multicore-ns-ratio 1.5]
//
// The section flag picks which record to emit ("current" is the latest
// capture; "baseline" the pre-rework engine). Benchmarks are emitted in
// name order so the output is deterministic.
//
// -check compares each fresh benchmark against the record's row of the
// same name and fails (exit 1) on regression. The two families gate
// differently on purpose: allocs/op is deterministic across machines,
// so its bound is tight (ratio × recorded + a small slack for
// scheduling-dependent parallel rows), while ns/op varies with the
// host, so its bound is loose — it catches an order-of-magnitude
// slide, not noise. Fresh benchmarks missing from the record are
// ignored (new benches land before their record does); recorded
// benchmarks missing from the fresh run are reported but do not fail,
// so partial runs can still gate what they measured.
//
// When the record has a "multicore" section, rows named there take
// their ns/op bound from that section's measurement × the tighter
// -multicore-ns-ratio: the multicore rows are the scheduler's headline
// claims (steal-half rebalancing, contended cache hits), captured on
// the same runner class that gates them, so they do not get the
// cross-machine slack the general bound allows. Alloc bounds are
// unchanged — they come from the main section either way.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// measurement is one benchmark record in BENCH_dse.json.
type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchfmt", flag.ContinueOnError)
	file := fs.String("f", "BENCH_dse.json", "benchmark record to convert")
	section := fs.String("section", "current", "record section to emit (current or baseline)")
	check := fs.String("check", "", "gate this fresh `go test -bench` output file against the record instead of emitting it")
	maxNsRatio := fs.Float64("max-ns-ratio", 2.0, "-check: fail when ns/op exceeds recorded × this (loose: hosts differ)")
	maxAllocRatio := fs.Float64("max-alloc-ratio", 1.25, "-check: fail when allocs/op exceeds recorded × this + slack (tight: allocs are deterministic)")
	allocSlack := fs.Float64("alloc-slack", 8, "-check: absolute allocs/op headroom for scheduling-dependent parallel rows")
	multicoreNsRatio := fs.Float64("multicore-ns-ratio", 1.5, "-check: ns/op bound ratio for rows in the record's multicore section (tight: same runner class)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	benches, err := loadSection(*file, *section)
	if err != nil {
		return err
	}
	if *check != "" {
		// The multicore section is optional: records predating it gate
		// every row with the general cross-machine bound.
		multicore, err := loadSection(*file, "multicore")
		if err != nil {
			multicore = nil
		}
		return runCheck(*check, benches, multicore, *maxNsRatio, *maxAllocRatio, *allocSlack, *multicoreNsRatio, stdout)
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := benches[name]
		// %g keeps the recorded precision: sub-microsecond records like
		// 188.3 ns/op must not round before benchstat sees them (B/op
		// and allocs/op are integral by construction).
		if _, err := fmt.Fprintf(stdout, "%s \t1\t%g ns/op\t%.0f B/op\t%.0f allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp); err != nil {
			return err
		}
	}
	return nil
}

func loadSection(file, section string) (map[string]measurement, error) {
	raw, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	sec, ok := doc[section]
	if !ok {
		return nil, fmt.Errorf("%s: no %q section", file, section)
	}
	var benches map[string]measurement
	if err := json.Unmarshal(sec, &benches); err != nil {
		return nil, fmt.Errorf("%s: section %q: %w", file, section, err)
	}
	return benches, nil
}

// parseBenchOutput extracts "BenchmarkName → measurement" rows from
// `go test -bench -benchmem` output, ignoring everything else.
func parseBenchOutput(r io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var m measurement
		ok := false
		// fields: name, iterations, then value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp, ok = v, true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if ok {
			out[fields[0]] = m
		}
	}
	return out, sc.Err()
}

// runCheck gates fresh benchmark output against the recorded section.
// Rows named in multicore take their ns/op bound from that section's
// record × multicoreNsRatio instead of the general cross-machine bound.
func runCheck(freshPath string, record, multicore map[string]measurement, maxNsRatio, maxAllocRatio, allocSlack, multicoreNsRatio float64, stdout io.Writer) error {
	f, err := os.Open(freshPath)
	if err != nil {
		return err
	}
	defer f.Close()
	fresh, err := parseBenchOutput(f)
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("%s: no benchmark lines found", freshPath)
	}

	seen := map[string]bool{}
	var names []string
	for name := range record {
		names = append(names, name)
		seen[name] = true
	}
	// Multicore-only rows still gate (against their own section); rows
	// in both take allocs from the main record and ns from multicore.
	for name := range multicore {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var violations []string
	checked := 0
	for _, name := range names {
		rec, inMain := record[name]
		got, ok := fresh[name]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %s: not in fresh output\n", name)
			continue
		}
		checked++
		nsBound := rec.NsPerOp * maxNsRatio
		nsRatio, nsRec := maxNsRatio, rec.NsPerOp
		if mc, ok := multicore[name]; ok {
			nsBound = mc.NsPerOp * multicoreNsRatio
			nsRatio, nsRec = multicoreNsRatio, mc.NsPerOp
			if !inMain {
				rec = mc
			}
		}
		allocBound := rec.AllocsPerOp*maxAllocRatio + allocSlack
		status := "ok  "
		if got.NsPerOp > nsBound {
			status = "FAIL"
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op > %.0f (recorded %.0f × %.2f)", name, got.NsPerOp, nsBound, nsRec, nsRatio))
		}
		if got.AllocsPerOp > allocBound {
			status = "FAIL"
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f allocs/op > %.0f (recorded %.0f × %.2f + %.0f)", name, got.AllocsPerOp, allocBound, rec.AllocsPerOp, maxAllocRatio, allocSlack))
		}
		fmt.Fprintf(stdout, "%s %s: %.0f ns/op (bound %.0f), %.0f allocs/op (bound %.0f)\n",
			status, name, got.NsPerOp, nsBound, got.AllocsPerOp, allocBound)
	}
	if checked == 0 {
		return fmt.Errorf("no recorded benchmarks matched the fresh output (name drift?)")
	}
	if len(violations) > 0 {
		return fmt.Errorf("bench regression:\n  %s", strings.Join(violations, "\n  "))
	}
	fmt.Fprintf(stdout, "checked %d/%d recorded benchmarks, all within bounds\n", checked, len(names))
	return nil
}
