package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRecord = `{
  "description": "test record",
  "baseline": {
    "Enumerate_1280": {"ns_per_op": 1303420, "bytes_per_op": 1459683, "allocs_per_op": 7774}
  },
  "current": {
    "BenchmarkZeta-4": {"ns_per_op": 100.5, "bytes_per_op": 32, "allocs_per_op": 2, "cpu_flag": 4},
    "BenchmarkAlpha": {"ns_per_op": 571187, "bytes_per_op": 764784, "allocs_per_op": 2311, "cpu_flag": 1}
  }
}`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(sampleRecord), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEmitsBenchFormat(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-f", writeSample(t)}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), out.String())
	}
	// Name order: deterministic output regardless of JSON map order.
	if !strings.HasPrefix(lines[0], "BenchmarkAlpha ") || !strings.HasPrefix(lines[1], "BenchmarkZeta-4 ") {
		t.Fatalf("unexpected order: %q", lines)
	}
	for _, want := range []string{"571187 ns/op", "764784 B/op", "2311 allocs/op"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line %q missing %q", lines[0], want)
		}
	}
	// Fractional ns/op keep their recorded precision (benchstat parses
	// float ns/op, exactly as `go test -bench` prints for fast ops).
	if !strings.Contains(lines[1], "100.5 ns/op") {
		t.Errorf("line %q lost ns/op precision", lines[1])
	}
}

func TestRunSectionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-f", writeSample(t), "-section", "baseline"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Enumerate_1280 ") {
		t.Fatalf("baseline section not emitted: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-f", "/nonexistent.json"}, &strings.Builder{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-f", writeSample(t), "-section", "nope"}, &strings.Builder{}); err == nil {
		t.Error("unknown section accepted")
	}
}

func writeFresh(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench-new.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckPasses(t *testing.T) {
	fresh := writeFresh(t, `goos: linux
BenchmarkAlpha 	2048	601234 ns/op	764784 B/op	2311 allocs/op
BenchmarkZeta-4 	9999999	105.2 ns/op	32 B/op	2 allocs/op
BenchmarkUnrecorded 	1	999999999 ns/op	0 B/op	0 allocs/op
PASS
`)
	var out strings.Builder
	if err := run([]string{"-f", writeSample(t), "-check", fresh}, &out); err != nil {
		t.Fatalf("in-bounds check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "checked 2/2") {
		t.Errorf("summary missing: %q", out.String())
	}
}

func TestCheckFailsOnNsRegression(t *testing.T) {
	// Recorded 571187 ns/op × default 2.0 = 1142374; 3ms is out.
	fresh := writeFresh(t, "BenchmarkAlpha 	512	3000000 ns/op	764784 B/op	2311 allocs/op\n")
	var out strings.Builder
	err := run([]string{"-f", writeSample(t), "-check", fresh}, &out)
	if err == nil || !strings.Contains(err.Error(), "ns/op") {
		t.Fatalf("ns regression not caught: err=%v\n%s", err, out.String())
	}
}

func TestCheckFailsOnAllocRegression(t *testing.T) {
	// Recorded 2311 allocs × 1.25 + 8 = 2896.75; 4000 is a real leak.
	// ns/op stays in bounds so only the alloc gate fires.
	fresh := writeFresh(t, "BenchmarkAlpha 	512	600000 ns/op	900000 B/op	4000 allocs/op\n")
	var out strings.Builder
	err := run([]string{"-f", writeSample(t), "-check", fresh}, &out)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("alloc regression not caught: err=%v\n%s", err, out.String())
	}
}

func TestCheckMissingRowsSkipNotFail(t *testing.T) {
	fresh := writeFresh(t, "BenchmarkAlpha 	512	600000 ns/op	764784 B/op	2311 allocs/op\n")
	var out strings.Builder
	if err := run([]string{"-f", writeSample(t), "-check", fresh}, &out); err != nil {
		t.Fatalf("partial run failed: %v", err)
	}
	if !strings.Contains(out.String(), "SKIP BenchmarkZeta-4") {
		t.Errorf("missing row not reported: %q", out.String())
	}
}

func TestCheckRejectsDisjointNames(t *testing.T) {
	fresh := writeFresh(t, "BenchmarkRenamedEverything 	1	1 ns/op	0 B/op	0 allocs/op\n")
	if err := run([]string{"-f", writeSample(t), "-check", fresh}, &strings.Builder{}); err == nil {
		t.Fatal("fully disjoint fresh output accepted — name drift would disable the gate silently")
	}
}

func TestCheckRejectsEmptyFresh(t *testing.T) {
	fresh := writeFresh(t, "no benchmarks here\n")
	if err := run([]string{"-f", writeSample(t), "-check", fresh}, &strings.Builder{}); err == nil {
		t.Fatal("benchless fresh file accepted")
	}
}

const multicoreRecord = `{
  "current": {
    "BenchmarkAlpha": {"ns_per_op": 571187, "bytes_per_op": 764784, "allocs_per_op": 2311}
  },
  "multicore": {
    "BenchmarkAlpha": {"ns_per_op": 200000, "bytes_per_op": 764784, "allocs_per_op": 2311},
    "BenchmarkOnlyMulti-4": {"ns_per_op": 1000, "bytes_per_op": 64, "allocs_per_op": 3}
  }
}`

func writeMulticore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(multicoreRecord), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckMulticoreTightensNsBound(t *testing.T) {
	// 500000 ns/op clears the general bound (571187 × 2.0) but not the
	// multicore one (200000 × 1.5 = 300000): the tighter bound must win
	// for rows recorded in the multicore section.
	fresh := writeFresh(t, "BenchmarkAlpha 	512	500000 ns/op	764784 B/op	2311 allocs/op\n")
	var out strings.Builder
	err := run([]string{"-f", writeMulticore(t), "-check", fresh}, &out)
	if err == nil || !strings.Contains(err.Error(), "1.50") {
		t.Fatalf("multicore ns bound not applied: err=%v\n%s", err, out.String())
	}
}

func TestCheckMulticoreOnlyRowGates(t *testing.T) {
	fresh := writeFresh(t, `BenchmarkAlpha 	512	250000 ns/op	764784 B/op	2311 allocs/op
BenchmarkOnlyMulti-4 	9999	9000 ns/op	64 B/op	3 allocs/op
`)
	var out strings.Builder
	err := run([]string{"-f", writeMulticore(t), "-check", fresh}, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkOnlyMulti-4") {
		t.Fatalf("multicore-only row not gated: err=%v\n%s", err, out.String())
	}
}

func TestCheckWithoutMulticoreSectionStillWorks(t *testing.T) {
	// Records predating the multicore section gate on the general bound.
	fresh := writeFresh(t, "BenchmarkAlpha 	512	1000000 ns/op	764784 B/op	2311 allocs/op\n")
	var out strings.Builder
	if err := run([]string{"-f", writeSample(t), "-check", fresh}, &out); err != nil {
		t.Fatalf("record without multicore section failed: %v\n%s", err, out.String())
	}
}

func TestRunAgainstRepoRecord(t *testing.T) {
	// The committed record must stay convertible — this is what the CI
	// bench-regression job feeds to benchstat.
	var out strings.Builder
	if err := run([]string{"-f", "../../BENCH_dse.json"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BenchmarkEnumerateSerial ", "ns/op", "allocs/op"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("repo record output missing %q", want)
		}
	}
}
